package ptrflow

import (
	"fmt"
	"sort"

	"chex86/internal/asm"
	"chex86/internal/decode"
	"chex86/internal/heap"
	"chex86/internal/isa"
	"chex86/internal/pipeline"
	"chex86/internal/tracker"
)

// Options parameterizes an analysis run.
type Options struct {
	// Harts is the number of hardware threads the program is run with
	// (selects the thread<i> entry points). Defaults to 1.
	Harts int

	// IndirectTargets maps an indirect JMP/CALL address to its possible
	// target set. Branches absent from the map are recorded as unresolved
	// (use RecoverIndirectTargets for a label-based over-approximation).
	IndirectTargets map[uint64][]uint64

	// MaxTransfers bounds block-transfer applications as a divergence
	// backstop; 0 means an automatic bound derived from program size.
	MaxTransfers int

	// ContextK selects the call-string depth of the context-sensitive
	// pass (context.go): 0 means the default k = 2, 1 and 2 are honored
	// as given (larger values clamp to 2), and -1 disables the pass
	// entirely — every function analyzed once with all callers merged,
	// reproducing the context-insensitive PR 2 analysis.
	ContextK int
}

// SiteKey identifies one memory micro-op: the macro-op address plus the
// micro-op's index within the native expansion. The dynamic tracker's
// deref trace uses the same key (see crosscheck.go).
type SiteKey struct {
	Addr     uint64
	MacroIdx uint8
}

// Site is the static classification of one memory micro-op.
type Site struct {
	Addr     uint64
	MacroIdx uint8
	Store    bool
	Inst     string // macro-op disassembly
	Verdict  Verdict
	// Assumed marks verdicts that rest on the init-order assumption
	// (a value read through a region summary before the analysis can
	// prove the region's writes precede it, see DESIGN.md §9); such
	// verdicts cannot prove tracker false negatives.
	Assumed bool
	// Deref is the joined abstract tag of the dereference (diagnostics).
	Deref Value
	// Reached reports whether the dataflow reached the site at all.
	Reached bool

	// EA is the joined effective-address attribution across every path
	// reaching the site: the owning region, the byte-offset interval
	// from its base, the access width, and whether a heap release may
	// precede the access. EA.OK is false when any path fails to
	// attribute the address to the same single region.
	EA eaFact

	// Ctxs is the per-calling-context refinement of the fields above,
	// keyed by k-limited call string (context.go); nil when the analysis
	// ran context-insensitively. Each entry joins only the paths that
	// reach the site under that context, so its verdict and EA
	// attribution are at least as sharp as the merged ones. Iterate via
	// SortedCtxs for deterministic output.
	Ctxs map[pipeline.CallCtx]*SiteCtx
}

// Key returns the site's key.
func (s *Site) Key() SiteKey { return SiteKey{Addr: s.Addr, MacroIdx: s.MacroIdx} }

// Stats aggregates analysis-wide counters for the report.
type Stats struct {
	Blocks              int
	Insts               int
	MemSites            int
	PointerSites        int
	NotPointerSites     int
	UnknownSites        int
	AssumedSites        int
	UnreachedSites      int
	UnknownEAStores     int // stores whose effective address could not be bounded
	UnresolvedIndirects int
	Transfers           int
}

// RegionSummary reports one abstract memory region's fixpoint for the
// JSON report.
type RegionSummary struct {
	Name    string `json:"name"`
	Init    string `json:"init"`    // static-initializer contribution
	Stores  string `json:"stores"`  // dynamic-store contribution
	Covered bool   `json:"covered"` // every word has an explicit initializer
}

// Analysis is the result of a static pointer-flow run.
type Analysis struct {
	CFG   *CFG
	Sites map[SiteKey]*Site
	Stats Stats

	// Harts records the hart count the analysis ran with (temporal heap
	// proofs are restricted under concurrency, see proof.go).
	Harts int

	// HeapMinChunk is a sound lower bound on the size of every heap
	// chunk the program allocates: the minimum over all reachable
	// allocator call sites of the provable lower bound of the size
	// argument (the allocator never returns a chunk smaller than the
	// request). Zero when any allocation size is unbounded below.
	HeapMinChunk uint64

	// AnyFree reports whether any reachable path calls free/realloc or
	// unknown external code (which may free).
	AnyFree bool

	// CtxK is the effective call-string depth the analysis ran with
	// (-1 context-insensitive, otherwise 1 or 2).
	CtxK int

	regions     map[string]*region
	relocSlot   map[uint64]string // reloc slot -> target global name
	globals     []asm.Global      // sorted by address
	poison      Value             // accumulated unknown-EA store contribution
	poisonGrows int               // poison growth count, for widening
	unresolved  map[uint64]bool   // indirect branches with no target hints

	blockIn []*state // per-block entry fixpoint (narrowed), nil if unreached

	// Context-sensitive pass results (context.go): per-(block, context)
	// entry states plus their deterministic discovery order.
	ctxIn    map[ctxKey]*state
	ctxOrder []ctxKey

	onRegionChange func() // fixpoint-restart notification
	collect        bool   // final pass: gather alloc-size/free facts
	frozen         bool   // context pass: region summaries are read-only
	allocUnknown   bool   // an allocation size could not be bounded below
	allocMin       int64  // min provable size-argument lower bound
}

// region is one abstract memory object's summary: what the alias table
// can hold for addresses inside it.
type region struct {
	init    Value // explicit static initializers (Data words, reloc slots)
	stores  Value // join of everything dynamically stored through it
	covered bool  // every 8-byte word has an explicit initializer
	grows   int   // summary growth count, for widening
}

// unmappedRegion names absolute addresses outside every known global.
const unmappedRegion = "@unmapped"

// state is the dataflow fact at a program point: per-register abstract
// tags, the tracked RSP displacement from hart entry, the per-frame
// stack-slot lattice (keyed by entry-relative offset, so slots survive
// across calls and the callee's spills resolve exactly), and whether any
// heap chunk may already have been released on a path reaching the point
// (free joins as logical OR — required for the temporal side of safety
// proofs, see proof.go).
type state struct {
	regs  [isa.NumRegs]Value
	rsp   int64
	rspOK bool
	frame map[int64]Value
	free  bool
}

func newEntryState() *state {
	s := &state{rspOK: true, frame: map[int64]Value{}}
	for i := range s.regs {
		s.regs[i] = notPtr // all tags start at 0
	}
	return s
}

// cmpFact is the block-local record of the last CMP micro-op, consumed
// by conditional-branch edge refinement. It is invalidated by any later
// flag-writing ALU micro-op and by writes to either operand, so at the
// block-terminating JCC it describes exactly the comparison the branch
// evaluates.
type cmpFact struct {
	ok     bool
	r1     isa.Reg
	r2     isa.Reg // RNone for register-immediate compares
	imm    int64
	hasImm bool
}

// invalidateOnWrite drops the fact when a micro-op overwrites one of the
// compared registers.
func (c *cmpFact) invalidateOnWrite(dst isa.Reg) {
	if c.ok && dst.Valid() && (dst == c.r1 || dst == c.r2) {
		c.ok = false
	}
}

func (s *state) clone() *state {
	c := *s
	c.frame = make(map[int64]Value, len(s.frame))
	for k, v := range s.frame {
		c.frame[k] = v
	}
	return &c
}

// reg reads a register tag, mirroring Tags.Current: invalid registers
// (RNone) read as tag 0.
func (s *state) reg(r isa.Reg) Value {
	if !r.Valid() {
		return notPtr
	}
	return s.regs[r]
}

// joinInto joins o into s, returning whether s changed. Frames join by
// key intersection (a slot live on only one path is unknown afterwards);
// diverging RSP displacements invalidate slot addressing entirely. When
// widen is set the interval components widen instead of joining, which
// bounds ascending chains through loop back edges.
func (s *state) joinInto(o *state, widen bool) bool {
	changed := false
	jv := join
	if widen {
		jv = widenValue
	}
	for i := range s.regs {
		j := jv(s.regs[i], o.regs[i])
		if !j.eq(s.regs[i]) {
			s.regs[i] = j
			changed = true
		}
	}
	if o.free && !s.free {
		s.free = true
		changed = true
	}
	if s.rspOK && (!o.rspOK || s.rsp != o.rsp) {
		s.rspOK = false
		changed = true
	}
	if !s.rspOK && s.frame != nil {
		s.frame = nil
		changed = true
	}
	if s.frame != nil {
		for k, v := range s.frame {
			ov, ok := o.frame[k]
			if !ok {
				delete(s.frame, k)
				changed = true
				continue
			}
			j := jv(v, ov)
			if !j.eq(v) {
				s.frame[k] = j
				changed = true
			}
		}
	}
	return changed
}

// refineByCond narrows the numeric ranges of the compared registers along
// one outgoing edge of a conditional branch: cond is the branch
// condition, taken selects the edge (the fall-through edge refines by the
// negated condition). Only values whose interval has numeric meaning are
// refined — comparing absolute pointer addresses says nothing about
// region-relative offsets. A refinement that would empty an interval
// (statically infeasible edge) is skipped: propagating the original state
// stays sound.
func refineByCond(st *state, cmp cmpFact, cond isa.Cond, taken bool) {
	if !cmp.ok || !cmp.r1.Valid() {
		return
	}
	if !taken {
		cond = negateCond(cond)
		if cond == isa.CondNone {
			return
		}
	}
	lhs := st.reg(cmp.r1)
	rhs := numVal(ivConst(cmp.imm))
	if !cmp.hasImm {
		if !cmp.r2.Valid() {
			return
		}
		rhs = st.reg(cmp.r2)
	}
	apply := func(r isa.Reg, v Value, bound Interval) {
		if !r.Valid() || (v.Tag != TagNotPtr && v.Tag != TagWild) {
			return
		}
		m := ivMeet(v.Rng, bound)
		if m.Empty() {
			return
		}
		v.Rng = m
		st.regs[r] = v
	}
	lb, rb := numRng(lhs), numRng(rhs)
	unsignedOK := !lb.Empty() && !rb.Empty() && lb.Lo >= 0 && rb.Lo >= 0
	switch cond {
	case isa.CondE:
		apply(cmp.r1, lhs, rb)
		if !cmp.hasImm {
			apply(cmp.r2, rhs, lb)
		}
	case isa.CondB, isa.CondBE, isa.CondA, isa.CondAE:
		// Unsigned orders coincide with signed ones only when both sides
		// are known non-negative.
		if !unsignedOK {
			return
		}
		fallthrough
	case isa.CondL, isa.CondLE, isa.CondG, isa.CondGE:
		lt := cond == isa.CondL || cond == isa.CondB
		le := cond == isa.CondLE || cond == isa.CondBE
		gt := cond == isa.CondG || cond == isa.CondA
		ge := cond == isa.CondGE || cond == isa.CondAE
		switch {
		case lt: // r1 < rhs
			apply(cmp.r1, lhs, Interval{Lo: negInf, Hi: satAdd(rb.Hi, -1)})
			if !cmp.hasImm {
				apply(cmp.r2, rhs, Interval{Lo: satAdd(lb.Lo, 1), Hi: posInf})
			}
		case le:
			apply(cmp.r1, lhs, Interval{Lo: negInf, Hi: rb.Hi})
			if !cmp.hasImm {
				apply(cmp.r2, rhs, Interval{Lo: lb.Lo, Hi: posInf})
			}
		case gt:
			apply(cmp.r1, lhs, Interval{Lo: satAdd(rb.Lo, 1), Hi: posInf})
			if !cmp.hasImm {
				apply(cmp.r2, rhs, Interval{Lo: negInf, Hi: satAdd(lb.Hi, -1)})
			}
		case ge:
			apply(cmp.r1, lhs, Interval{Lo: rb.Lo, Hi: posInf})
			if !cmp.hasImm {
				apply(cmp.r2, rhs, Interval{Lo: negInf, Hi: lb.Hi})
			}
		}
	case isa.CondS:
		apply(cmp.r1, lhs, Interval{Lo: negInf, Hi: -1})
	case isa.CondNS:
		apply(cmp.r1, lhs, Interval{Lo: 0, Hi: posInf})
	}
}

// negateCond returns the condition selecting the fall-through edge, or
// CondNone when the negation is not representable.
func negateCond(c isa.Cond) isa.Cond {
	switch c {
	case isa.CondE:
		return isa.CondNE
	case isa.CondNE:
		return isa.CondE
	case isa.CondL:
		return isa.CondGE
	case isa.CondGE:
		return isa.CondL
	case isa.CondLE:
		return isa.CondG
	case isa.CondG:
		return isa.CondLE
	case isa.CondB:
		return isa.CondAE
	case isa.CondAE:
		return isa.CondB
	case isa.CondBE:
		return isa.CondA
	case isa.CondA:
		return isa.CondBE
	case isa.CondS:
		return isa.CondNS
	case isa.CondNS:
		return isa.CondS
	}
	return isa.CondNone
}

// Analyze runs the static pointer-flow analysis over prog.
func Analyze(prog *asm.Program, opt Options) (*Analysis, error) {
	g := BuildCFG(prog, opt.Harts, opt.IndirectTargets)
	a := &Analysis{
		CFG:        g,
		Sites:      map[SiteKey]*Site{},
		regions:    map[string]*region{},
		relocSlot:  map[uint64]string{},
		globals:    prog.SortedGlobals(),
		poison:     bot,
		unresolved: map[uint64]bool{},
	}
	for _, addr := range g.Unresolved {
		a.unresolved[addr] = true
	}
	a.Harts = opt.Harts
	if a.Harts <= 0 {
		a.Harts = 1
	}
	a.CtxK = opt.ContextK
	switch {
	case a.CtxK == 0 || a.CtxK > 2:
		a.CtxK = 2
	case a.CtxK < 0:
		a.CtxK = -1
	}
	a.Stats.Blocks = len(g.Blocks)
	a.Stats.Insts = len(prog.Insts)
	a.Stats.UnresolvedIndirects = len(g.Unresolved)
	a.seedRegions(prog)
	if len(g.Blocks) == 0 {
		return a, nil
	}

	db := tracker.NewRuleDB()
	var dec decode.Decoder
	uopBuf := make([]isa.Uop, 0, 8)

	maxTransfers := opt.MaxTransfers
	if maxTransfers == 0 {
		// Generous: lattice height per fact is small, so fixpoints settle in
		// a handful of sweeps even with region-summary restarts.
		maxTransfers = (len(g.Blocks) + 1) * 4096
	}

	in := make([]*state, len(g.Blocks))
	dirty := make([]bool, len(g.Blocks))
	joins := make([]int, len(g.Blocks))
	var work []int
	push := func(id int) {
		if !dirty[id] {
			dirty[id] = true
			work = append(work, id)
		}
	}
	for _, e := range g.Entries {
		in[e] = newEntryState()
		push(e)
	}

	regionsDirty := false
	a.onRegionChange = func() { regionsDirty = true }

	// Edge states (a.edgeState, context.go) apply conditional-branch
	// refinement on JCC edges; the context-sensitive pass shares the
	// same helper.

	for len(work) > 0 {
		id := work[0]
		work = work[1:]
		dirty[id] = false

		a.Stats.Transfers++
		if a.Stats.Transfers > maxTransfers {
			return nil, fmt.Errorf("ptrflow: fixpoint exceeded %d block transfers (diverging lattice?)", maxTransfers)
		}

		st := in[id].clone()
		cmp := a.transferBlock(g, &g.Blocks[id], st, db, &dec, &uopBuf, nil)

		for _, succ := range g.Blocks[id].Succs {
			es := a.edgeState(&g.Blocks[id], st, cmp, succ)
			if in[succ] == nil {
				in[succ] = es.clone()
				push(succ)
			} else if in[succ].joinInto(es, joins[succ] >= widenAfter) {
				joins[succ]++
				push(succ)
			}
		}
		// A region summary grew: facts read through it anywhere may be
		// stale, so restart the sweep over every reached block.
		if regionsDirty && len(work) == 0 {
			regionsDirty = false
			for id := range in {
				if in[id] != nil {
					push(id)
				}
			}
		}
	}

	// Narrowing: re-apply the transfer to the (widened) post-fixpoint a
	// bounded number of times. Every re-application descends while still
	// over-approximating the least fixpoint — the transfer is monotone
	// and in is a post-fixpoint — so widened loop bounds recover the
	// precision the back-edge refinements provide.
	a.onRegionChange = nil
	for sweep := 0; sweep < narrowSweeps; sweep++ {
		next := make([]*state, len(g.Blocks))
		for _, e := range g.Entries {
			next[e] = newEntryState()
		}
		for id := range g.Blocks {
			if in[id] == nil {
				continue
			}
			a.Stats.Transfers++
			st := in[id].clone()
			cmp := a.transferBlock(g, &g.Blocks[id], st, db, &dec, &uopBuf, nil)
			for _, succ := range g.Blocks[id].Succs {
				es := a.edgeState(&g.Blocks[id], st, cmp, succ)
				if next[succ] == nil {
					next[succ] = es.clone()
				} else {
					next[succ].joinInto(es, false)
				}
			}
		}
		for id := range in {
			if next[id] != nil {
				in[id] = next[id]
			}
		}
	}
	a.blockIn = in

	// Final pass over the fixpoint: record per-site verdicts, allocation
	// sizes and release reachability.
	a.collect = true
	a.allocMin = -1
	for bi := range g.Blocks {
		if in[bi] == nil {
			a.recordUnreached(g, &g.Blocks[bi], &dec, &uopBuf)
			continue
		}
		st := in[bi].clone()
		a.transferBlock(g, &g.Blocks[bi], st, db, &dec, &uopBuf, a.recordSite)
	}
	a.collect = false
	if !a.allocUnknown && a.allocMin > 0 {
		a.HeapMinChunk = uint64(a.allocMin)
	}
	a.finish()

	// Context-sensitive pass (context.go): a second fixpoint over
	// (block, k-limited call string) nodes with valid-path call/return
	// matching, reading the region summaries above frozen. It only adds
	// per-context refinements (Site.Ctxs, per-context invariants and
	// proofs); every context-insensitive result stands as computed.
	if a.CtxK >= 1 {
		a.frozen = true
		err := a.analyzeContexts(db, &dec, &uopBuf, maxTransfers)
		a.frozen = false
		if err != nil {
			return nil, err
		}
	}
	return a, nil
}

const (
	// widenAfter is the number of changing joins a block tolerates before
	// interval widening kicks in on its entry state.
	widenAfter = 3
	// narrowSweeps is the number of descending re-applications of the
	// transfer after the widened fixpoint.
	narrowSweeps = 2
)

// seedRegions computes each global's static-initializer contribution and
// coverage from the loader's Data words and relocation entries.
func (a *Analysis) seedRegions(prog *asm.Program) {
	for _, r := range prog.Relocs {
		a.relocSlot[r.Slot] = r.Target
	}
	covered := map[string]map[uint64]bool{}
	slot := func(g *asm.Global, addr uint64, v Value) {
		r := a.region(g.Name)
		r.init = join(r.init, v)
		if covered[g.Name] == nil {
			covered[g.Name] = map[uint64]bool{}
		}
		covered[g.Name][addr&^7] = true
	}
	for _, g := range prog.Globals {
		a.region(g.Name) // materialize, covered computed below
	}
	for _, d := range prog.Data {
		if g := a.globalAt(d.Addr); g != nil {
			slot(g, d.Addr, numVal(ivConst(int64(d.Val))))
		}
	}
	for _, rl := range prog.Relocs {
		if g := a.globalAt(rl.Slot); g != nil {
			slot(g, rl.Slot, ptrVal(rl.Target, ivConst(0)))
		}
	}
	for i := range a.globals {
		g := &a.globals[i]
		words := (g.Size + 7) / 8
		a.region(g.Name).covered = uint64(len(covered[g.Name])) >= words && words > 0
	}
}

func (a *Analysis) region(name string) *region {
	r, ok := a.regions[name]
	if !ok {
		r = &region{init: bot, stores: bot}
		a.regions[name] = r
	}
	return r
}

// globalAt returns the global containing addr, or nil.
func (a *Analysis) globalAt(addr uint64) *asm.Global {
	i := sort.Search(len(a.globals), func(i int) bool {
		return a.globals[i].Addr+a.globals[i].Size > addr
	})
	if i < len(a.globals) && a.globals[i].Addr <= addr {
		return &a.globals[i]
	}
	return nil
}

func (a *Analysis) regionNameAt(addr uint64) string {
	if g := a.globalAt(addr); g != nil {
		return g.Name
	}
	return unmappedRegion
}

// readRegion returns the abstract alias-table content for any address
// inside the named region: the join of static initializers and dynamic
// stores. Regions that are not fully covered by explicit initializers
// exclude the implicit-zero baseline from the join — instead, reads carry
// the Assumed taint (the init-order assumption).
func (a *Analysis) readRegion(name string) Value {
	r := a.region(name)
	v := join(r.init, r.stores)
	v = join(v, a.poison)
	if v.Tag == TagBot {
		return zeroVal // nothing is ever written: implicit zero, sound
	}
	if !r.covered {
		if v.Tag != TagNotPtr {
			v.Assumed = true
		}
		// Words without an explicit initializer read as zero until
		// written; fold that into the numeric range. (For pointer-tagged
		// summaries the interval constrains only tagged runtime values —
		// an uninitialized word is untagged — but widening by zero stays
		// sound either way.)
		if v.rangeMeaningful() {
			v.Rng = ivJoin(v.Rng, ivConst(0))
		}
	}
	return v
}

// relocRead returns the value loaded from an exact relocation slot: the
// loader seeded its alias with the target global's PID, so the result is
// a sound pointer into the target — joined with any dynamic stores that
// may have overwritten the slot's containing region.
func (a *Analysis) relocRead(slotAddr uint64) Value {
	v := ptrVal(a.relocSlot[slotAddr], ivConst(0))
	cont := a.region(a.regionNameAt(slotAddr))
	if cont.stores.Tag != TagBot {
		v = join(v, cont.stores)
	}
	if a.poison.Tag != TagBot {
		v = join(v, a.poison)
	}
	return v
}

// joinStore accumulates a dynamic store into a region summary, flagging a
// fixpoint restart when the summary grows.
func (a *Analysis) joinStore(name string, v Value) {
	if a.frozen {
		// Context pass: the summaries already over-approximate every
		// store (the insensitive fixpoint saw a superset of the states),
		// and regions stay context-insensitive by design — shared memory
		// has no owning call string.
		return
	}
	r := a.region(name)
	j := join(r.stores, v)
	if !j.eq(r.stores) {
		// Region summaries sit outside the per-block widening: every
		// growth restarts the fixpoint, so an interval climbing with a
		// loop counter would restart forever. Widen after the same
		// tolerance the block states get.
		r.grows++
		if r.grows > widenAfter {
			j = widenValue(r.stores, j)
		}
		r.stores = j
		if a.onRegionChange != nil {
			a.onRegionChange()
		}
	}
}

// poisonAll records a store whose effective address the analysis cannot
// bound: it may hit any region (and any stack slot), so its value joins
// every summary and the final pass demotes all verdicts to Assumed.
func (a *Analysis) poisonAll(v Value) {
	if a.frozen {
		return // already accounted by the insensitive fixpoint
	}
	j := join(a.poison, v)
	if !j.eq(a.poison) {
		a.poisonGrows++
		if a.poisonGrows > widenAfter {
			j = widenValue(a.poison, j)
		}
		a.poison = j
		if a.onRegionChange != nil {
			a.onRegionChange()
		}
	}
	a.Stats.UnknownEAStores++
}

// derefVal mirrors Engine.DerefPID abstractly: the base register's tag,
// falling back to the index register when the base tag is zero.
func derefVal(st *state, m isa.MemRef) Value {
	b := st.reg(m.Base)
	ix := st.reg(m.Index)
	switch b.Tag {
	case TagNotPtr:
		return ix
	case TagPtr, TagWild:
		return b
	case TagBot:
		return bot
	default: // Top: the base may or may not fall back to the index
		return join(b, ix)
	}
}

// eaPointer selects the pointer through which a memory micro-op's
// effective address is formed, for region attribution. The bool is false
// when the EA cannot be bounded (arbitrary integer arithmetic, wild or
// unbounded operands).
func eaPointer(st *state, m isa.MemRef) (Value, bool) {
	b := st.reg(m.Base)
	ix := st.reg(m.Index)
	var p Value
	switch {
	case b.Tag == TagPtr:
		p = b
	case b.Tag == TagNotPtr && ix.Tag == TagPtr:
		p = ix
	default:
		return top, false
	}
	if p.Region == "" {
		return top, false
	}
	return p, true
}

// siteFn observes each memory micro-op's deref value and effective-
// address attribution during the final fixpoint pass.
type siteFn func(in *isa.Inst, u *isa.Uop, deref Value, ea eaFact)

// eaFact is the static attribution of one memory micro-op's effective
// address at one program point: the region it falls in, the byte-offset
// interval from the region base, and the temporal release fact. OK is
// false when the address cannot be attributed to a single region.
type eaFact struct {
	OK      bool
	Region  string
	Off     Interval
	Size    uint32
	Free    bool // a heap release may precede this point
	Assumed bool // attribution rests on the init-order assumption
}

// transferBlock interprets one basic block's macro-ops on st, mirroring
// the engine's per-uop semantics exactly (see internal/tracker/engine.go).
// The returned cmpFact describes the last valid CMP before the block's
// terminating branch, for edge refinement.
func (a *Analysis) transferBlock(g *CFG, b *Block, st *state, db *tracker.RuleDB, dec *decode.Decoder, buf *[]isa.Uop, site siteFn) cmpFact {
	prog := g.Prog
	var cmp cmpFact
	for idx := b.Start; idx < b.End; idx++ {
		in := &prog.Insts[idx]
		uops := dec.Native(in, (*buf)[:0])
		*buf = uops

		for i := range uops {
			u := &uops[i]
			if site != nil && u.Type.IsMem() {
				site(in, u, derefVal(st, u.Mem), a.eaFactOf(st, u))
			}
			a.transferUop(st, u, db, &cmp)
		}
		if in.Op == isa.CALL {
			switch {
			case in.Dst.Kind != isa.OpReg && prog.At(in.Target) == nil:
				a.applyExternalCall(st, in.Target)
			case in.Dst.Kind == isa.OpReg && a.unresolved[in.Addr]:
				// An indirect call with no hint set could reach anything.
				a.applyExternalCall(st, 0)
			}
		}
	}
	return cmp
}

// transferUop applies one micro-op's tracker effect to the abstract state
// and maintains the block-local compare fact.
func (a *Analysis) transferUop(st *state, u *isa.Uop, db *tracker.RuleDB, cmp *cmpFact) {
	switch u.Type {
	case isa.ULoad:
		cmp.invalidateOnWrite(u.Dst)
		v := a.loadValue(st, u)
		// Sub-word loads cannot reload a pointer: the pipeline skips
		// ResolveLoad entirely, leaving the destination tag unchanged.
		// The destination's numeric value does change, though: a stale
		// interval would be unsound, so it resets to the widest range
		// the loaded width can produce.
		if u.AccessSize() < 8 {
			if u.Dst.Valid() && u.Dst != isa.FLAGS {
				d := st.regs[u.Dst]
				// The loaded value is zero-extended into the register, so
				// a numeric range is exact; a surviving pointer tag now
				// covers an arbitrary value, so its offset is unbounded.
				if d.Tag == TagNotPtr || d.Tag == TagWild {
					d.Rng = subWordRange(u.AccessSize())
				} else {
					d.Rng = ivFull
				}
				st.regs[u.Dst] = d
			}
			return
		}
		// ResolveLoad always propagates the actual alias-table PID to the
		// destination — including zero.
		if u.Dst.Valid() {
			st.regs[u.Dst] = v
		}

	case isa.UStore:
		sv := memVal(st.reg(u.Src1))
		if u.AccessSize() < 8 {
			// Sub-word stores force the alias-clear path, and partially
			// overwrite a word whose resulting numeric value is unbounded.
			sv = Value{Tag: TagNotPtr, Assumed: sv.Assumed, Rng: ivFull}
		}
		a.storeEffect(st, u, sv)

	case isa.UJump, isa.UBranch, isa.UNop:
		// No register-tag effect (no destination register).

	default: // UMov, ULimm, UAlu, ULea
		a.transferArith(st, u, db, cmp)
	}
}

// subWordRange is the widest zero-extended value a sub-word load can
// produce.
func subWordRange(size uint32) Interval {
	if size >= 8 || size == 0 {
		return ivFull
	}
	return Interval{Lo: 0, Hi: int64(1)<<(8*uint(size)) - 1}
}

// transferArith applies a register-writing micro-op: the tag component
// through the sampled Table-I rule (applyRegRule), the interval component
// structurally from the micro-op's arithmetic, and the compare fact.
func (a *Analysis) transferArith(st *state, u *isa.Uop, db *tracker.RuleDB, cmp *cmpFact) {
	// Capture sources before the destination is overwritten. LEA reads
	// its memory-operand registers (matching applyRegRule).
	v1 := st.reg(u.Src1)
	v2 := notPtr
	if !u.HasImm && u.Src2.Valid() {
		v2 = st.reg(u.Src2)
	}
	if u.Type == isa.ULea {
		v1 = st.reg(u.Mem.Base)
		v2 = st.reg(u.Mem.Index)
	}
	if u.Type == isa.UAlu {
		// Every ALU macro-op rewrites FLAGS, so an older compare no
		// longer describes the flags a later JCC evaluates.
		cmp.ok = false
		if u.Alu == isa.AluCmp {
			*cmp = cmpFact{ok: true, r1: u.Src1, r2: isa.RNone, imm: u.Imm, hasImm: u.HasImm}
			if !u.HasImm {
				cmp.r2 = u.Src2
			}
		}
	}
	cmp.invalidateOnWrite(u.Dst)

	a.trackRSP(st, u)
	a.applyRegRule(st, u, db)
	if !u.Dst.Valid() || u.Dst == isa.FLAGS {
		return
	}
	res := st.regs[u.Dst]
	res.Rng = rngTransfer(u, res, v1, v2)
	if !res.rangeMeaningful() {
		res.Rng = ivFull
	}
	st.regs[u.Dst] = res
}

// rngTransfer computes the interval component of a register-writing
// micro-op's result. res carries the already-computed tag and region, so
// pointer arithmetic can be attributed to the surviving pointer operand;
// v1/v2 are the pre-overwrite source values (LEA's memory registers for
// ULea).
func rngTransfer(u *isa.Uop, res Value, v1, v2 Value) Interval {
	imm := func() Interval { return ivConst(u.Imm) }
	rhs := func() Interval {
		if u.HasImm {
			return imm()
		}
		return numRng(v2)
	}
	switch u.Type {
	case isa.ULimm:
		return imm()

	case isa.UMov:
		// The tag rule copies the value wholesale; its interval keeps
		// whatever meaning the source had, matching the copied tag.
		return v1.Rng

	case isa.ULea:
		return leaRange(res, v1, v2, u.Mem)

	case isa.UAlu:
		switch u.Alu {
		case isa.AluAdd:
			return addRange(res, v1, v2, u.HasImm, imm())
		case isa.AluSub:
			if res.Tag == TagPtr && res.Region != "" && v1.Tag == TagPtr && v1.Region == res.Region {
				return ivSub(v1.Rng, rhs())
			}
			return ivSub(numRng(v1), rhs())
		case isa.AluAnd:
			if u.HasImm {
				return ivAndMask(numRng(v1), u.Imm)
			}
			n1, n2 := numRng(v1), numRng(v2)
			if !n1.Empty() && !n2.Empty() && n1.Lo >= 0 && n2.Lo >= 0 {
				return Interval{Lo: 0, Hi: min64(n1.Hi, n2.Hi)}
			}
			return ivFull
		case isa.AluShl:
			if u.HasImm {
				return ivShl(numRng(v1), u.Imm)
			}
			return ivFull
		case isa.AluShr:
			if u.HasImm {
				return ivShr(numRng(v1), u.Imm)
			}
			return ivFull
		case isa.AluMul:
			return ivMul(numRng(v1), rhs())
		case isa.AluXor:
			if !u.HasImm && u.Src1 == u.Src2 && u.Src1.Valid() {
				return ivConst(0) // xor-self zero idiom
			}
			return ivFull
		case isa.AluOr:
			n1, n2 := numRng(v1), numRng(v2)
			if u.HasImm {
				n2 = imm()
			}
			if !n1.Empty() && !n2.Empty() && n1.Lo >= 0 && n2.Lo >= 0 &&
				n1.Hi != posInf && n2.Hi != posInf {
				// OR cannot clear bits: the result fits in the union of
				// both operands' bit widths.
				return Interval{Lo: max64(n1.Lo, n2.Lo), Hi: orCeil(n1.Hi, n2.Hi)}
			}
			return ivFull
		}
		return ivFull
	}
	return ivFull
}

// orCeil returns the smallest all-ones value covering both operands: a
// sound upper bound for bitwise OR of non-negative values.
func orCeil(a, b int64) int64 {
	m := a | b
	for m&(m+1) != 0 {
		m |= m >> 1
	}
	return m
}

// addRange computes the interval of an addition whose result tag and
// region attribution are already known: pointer ± number advances the
// offset, number + number adds the ranges, anything else is unbounded.
func addRange(res, v1, v2 Value, hasImm bool, imm Interval) Interval {
	rhs := imm
	if !hasImm {
		rhs = numRng(v2)
	}
	if res.Tag == TagPtr && res.Region != "" {
		switch {
		case v1.Tag == TagPtr && v1.Region == res.Region && (hasImm || v2.Tag != TagPtr):
			return ivAdd(v1.Rng, rhs)
		case !hasImm && v2.Tag == TagPtr && v2.Region == res.Region && v1.Tag != TagPtr:
			return ivAdd(v2.Rng, numRng(v1))
		}
		return ivFull
	}
	return ivAdd(numRng(v1), rhs)
}

// leaRange computes the interval of a LEA result: base + index*scale +
// disp, attributed to the surviving pointer operand when the result is a
// region pointer, plain arithmetic when every operand is numeric.
func leaRange(res Value, base, index Value, m isa.MemRef) Interval {
	scale := int64(m.Scale)
	if scale == 0 {
		scale = 1
	}
	ix := ivConst(0)
	if m.Index.Valid() {
		ix = ivScale(numRng(index), scale)
	}
	if res.Tag == TagPtr && res.Region != "" {
		switch {
		case m.Base.Valid() && base.Tag == TagPtr && base.Region == res.Region &&
			(!m.Index.Valid() || index.Tag != TagPtr):
			return ivAddConst(ivAdd(base.Rng, ix), m.Disp)
		case m.Index.Valid() && index.Tag == TagPtr && index.Region == res.Region &&
			scale == 1 && (!m.Base.Valid() || base.Tag != TagPtr):
			b := ivConst(0)
			if m.Base.Valid() {
				b = numRng(base)
			}
			return ivAddConst(ivAdd(index.Rng, b), m.Disp)
		}
		return ivFull
	}
	b := ivConst(0)
	if m.Base.Valid() {
		b = numRng(base)
	}
	return ivAddConst(ivAdd(b, ix), m.Disp)
}

// eaFactOf attributes a memory micro-op's effective address to a region
// and offset interval at the current program point.
func (a *Analysis) eaFactOf(st *state, u *isa.Uop) eaFact {
	m := u.Mem
	f := eaFact{Size: u.AccessSize(), Free: st.free, Off: ivFull}
	if !m.Base.Valid() && !m.Index.Valid() {
		g := a.globalAt(uint64(m.Disp))
		if g == nil {
			return f
		}
		f.OK = true
		f.Region = g.Name
		f.Off = ivConst(m.Disp - int64(g.Addr))
		return f
	}
	scale := int64(m.Scale)
	if scale == 0 {
		scale = 1
	}
	b := st.reg(m.Base)
	ix := st.reg(m.Index)
	switch {
	case m.Base.Valid() && b.Tag == TagPtr && b.Region != "" &&
		(!m.Index.Valid() || ix.Tag != TagPtr):
		f.OK = true
		f.Region = b.Region
		f.Assumed = b.Assumed
		off := b.Rng
		if m.Index.Valid() {
			off = ivAdd(off, ivScale(numRng(ix), scale))
		}
		f.Off = ivAddConst(off, m.Disp)
	case m.Index.Valid() && ix.Tag == TagPtr && ix.Region != "" && scale == 1 &&
		(!m.Base.Valid() || b.Tag == TagNotPtr):
		f.OK = true
		f.Region = ix.Region
		f.Assumed = ix.Assumed
		off := ix.Rng
		if m.Base.Valid() {
			off = ivAdd(off, numRng(b))
		}
		f.Off = ivAddConst(off, m.Disp)
	}
	return f
}

// trackRSP maintains the concrete RSP displacement: immediate add/sub on
// RSP adjust it; any other RSP write destroys slot addressing.
func (a *Analysis) trackRSP(st *state, u *isa.Uop) {
	if u.Dst != isa.RSP {
		return
	}
	if u.Type == isa.UAlu && u.HasImm && u.Src1 == isa.RSP &&
		(u.Alu == isa.AluAdd || u.Alu == isa.AluSub) {
		if st.rspOK {
			if u.Alu == isa.AluAdd {
				st.rsp += u.Imm
			} else {
				st.rsp -= u.Imm
			}
		}
		return
	}
	st.rspOK = false
	st.frame = nil
}

// applyRegRule is the abstract mirror of Engine.ApplyRegRule: first
// matching rule, sampled through absPropagate; no match clears the tag.
func (a *Analysis) applyRegRule(st *state, u *isa.Uop, db *tracker.RuleDB) {
	if !u.Dst.Valid() || u.Dst == isa.FLAGS {
		return
	}
	r := db.Match(u)
	if r == nil || r.Propagate == nil {
		st.regs[u.Dst] = notPtr
		return
	}
	v1 := st.reg(u.Src1)
	v2 := notPtr
	if !u.HasImm && u.Src2.Valid() {
		v2 = st.reg(u.Src2)
	}
	if u.Type == isa.ULea {
		v1 = st.reg(u.Mem.Base)
		v2 = st.reg(u.Mem.Index)
	}
	st.regs[u.Dst] = absPropagate(r, v1, v2)
}

// loadValue returns the abstract alias-table content at a load's
// effective address.
func (a *Analysis) loadValue(st *state, u *isa.Uop) Value {
	m := u.Mem
	if !m.Base.Valid() && !m.Index.Valid() {
		addr := uint64(m.Disp)
		if _, ok := a.relocSlot[addr]; ok {
			return a.relocRead(addr)
		}
		return a.readRegion(a.regionNameAt(addr))
	}
	if m.Base == isa.RSP && !m.Index.Valid() {
		if st.rspOK && st.frame != nil {
			if v, ok := st.frame[st.rsp+m.Disp]; ok {
				return v
			}
		}
		return top
	}
	p, ok := eaPointer(st, m)
	if !ok {
		return top
	}
	v := a.readRegion(p.Region)
	if p.Assumed {
		v.Assumed = true
	}
	return v
}

// storeEffect applies a store's alias-table effect: exact stack slots get
// strong updates, region-attributed addresses accumulate weakly, and
// unbounded addresses poison everything.
func (a *Analysis) storeEffect(st *state, u *isa.Uop, sv Value) {
	m := u.Mem
	if !m.Base.Valid() && !m.Index.Valid() {
		a.joinStore(a.regionNameAt(uint64(m.Disp)), sv)
		return
	}
	if m.Base == isa.RSP && !m.Index.Valid() {
		if st.rspOK && st.frame != nil {
			st.frame[st.rsp+m.Disp] = sv
		} else {
			st.frame = nil // somewhere on the stack: every slot is suspect
		}
		return
	}
	if p, ok := eaPointer(st, m); ok {
		a.joinStore(p.Region, sv)
		return
	}
	a.poisonAll(sv)
}

// applyExternalCall models a direct call that leaves program text. The
// allocator routines are intercepted by the OS/microcode (Section IV-C):
// they return to the call site with %rax carrying the fresh capability
// (malloc family) or with registers untouched (free). Unknown externals
// clobber everything.
func (a *Analysis) applyExternalCall(st *state, target uint64) {
	// The callee's synthetic RET pops the return address pushed by the
	// call's own store micro-op (already interpreted by the caller block).
	retPop := func() {
		if st.rspOK && st.frame != nil {
			if v, ok := st.frame[st.rsp]; ok {
				st.regs[isa.T0] = v
			} else {
				st.regs[isa.T0] = top
			}
		} else {
			st.regs[isa.T0] = top
		}
		if st.rspOK {
			st.rsp += 8
		}
	}
	switch target {
	case heap.MallocEntry, heap.CallocEntry, heap.ReallocEntry:
		if a.collect {
			// The size request in %rdi bounds the chunk below: the
			// allocator only ever rounds requests up.
			rdi := numRng(st.reg(isa.RDI))
			if rdi.Bounded() && rdi.Lo > 0 {
				if a.allocMin < 0 || rdi.Lo < a.allocMin {
					a.allocMin = rdi.Lo
				}
			} else {
				a.allocUnknown = true
			}
		}
		if target == heap.ReallocEntry {
			// Realloc may move (and thus release) the old chunk.
			st.free = true
		}
		retPop()
		// Capability transfer at allocator exit: %rax := the new PID.
		st.regs[isa.RAX] = ptrVal(HeapRegion, ivConst(0))
	case heap.FreeEntry:
		st.free = true
		retPop()
	default:
		// Unknown external code: nothing can be assumed — including that
		// no chunk was released.
		for i := range st.regs {
			st.regs[i] = top
		}
		st.rspOK = false
		st.frame = nil
		st.free = true
		a.poisonAll(top)
	}
	if a.collect && target != heap.MallocEntry && target != heap.CallocEntry {
		a.AnyFree = true
	}
}

// recordSite folds one execution point's deref value and EA attribution
// into its site.
func (a *Analysis) recordSite(in *isa.Inst, u *isa.Uop, deref Value, ea eaFact) {
	k := SiteKey{Addr: in.Addr, MacroIdx: u.MacroIdx}
	s, ok := a.Sites[k]
	if !ok {
		s = &Site{Addr: in.Addr, MacroIdx: u.MacroIdx, Store: u.Type == isa.UStore,
			Inst: in.String(), Deref: bot}
		a.Sites[k] = s
	}
	if !s.Reached {
		s.EA = ea
	} else {
		s.EA = joinEA(s.EA, ea)
	}
	s.Reached = true
	s.Deref = join(s.Deref, deref)
}

// joinEA folds two effective-address attributions of the same site: the
// attribution survives only when both paths agree on the region.
func joinEA(a, b eaFact) eaFact {
	out := eaFact{
		OK:      a.OK && b.OK && a.Region == b.Region,
		Region:  a.Region,
		Off:     ivJoin(a.Off, b.Off),
		Free:    a.Free || b.Free,
		Assumed: a.Assumed || b.Assumed,
		Size:    a.Size,
	}
	if b.Size > out.Size {
		out.Size = b.Size
	}
	if !out.OK {
		out.Region = ""
		out.Off = ivFull
	}
	return out
}

// recordUnreached registers sites in blocks the dataflow never reached
// (code behind unresolved indirect branches) so runtime executions there
// are classified, not silently dropped.
func (a *Analysis) recordUnreached(g *CFG, b *Block, dec *decode.Decoder, buf *[]isa.Uop) {
	for idx := b.Start; idx < b.End; idx++ {
		in := &g.Prog.Insts[idx]
		uops := dec.Native(in, (*buf)[:0])
		*buf = uops
		for i := range uops {
			u := &uops[i]
			if !u.Type.IsMem() {
				continue
			}
			k := SiteKey{Addr: in.Addr, MacroIdx: u.MacroIdx}
			if _, ok := a.Sites[k]; !ok {
				a.Sites[k] = &Site{Addr: in.Addr, MacroIdx: u.MacroIdx,
					Store: u.Type == isa.UStore, Inst: in.String(), Deref: bot,
					EA: eaFact{Off: ivFull}}
			}
		}
	}
}

// finish derives verdicts and aggregate statistics from the folded sites.
func (a *Analysis) finish() {
	for _, s := range a.Sites {
		a.Stats.MemSites++
		if !s.Reached {
			s.Verdict = VerdictUnknown
			a.Stats.UnreachedSites++
			continue
		}
		s.Verdict = verdictOf(s.Deref)
		s.Assumed = s.Deref.Assumed
		// Any unbounded store makes every proof conditional.
		if a.Stats.UnknownEAStores > 0 {
			s.Assumed = true
		}
		switch s.Verdict {
		case VerdictPointer:
			a.Stats.PointerSites++
		case VerdictNotPointer:
			a.Stats.NotPointerSites++
		default:
			a.Stats.UnknownSites++
		}
		if s.Assumed {
			a.Stats.AssumedSites++
		}
	}
}

// SortedSites returns the sites ordered by (address, micro-op index).
func (a *Analysis) SortedSites() []*Site {
	out := make([]*Site, 0, len(a.Sites))
	for _, s := range a.Sites {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Addr != out[j].Addr {
			return out[i].Addr < out[j].Addr
		}
		return out[i].MacroIdx < out[j].MacroIdx
	})
	return out
}

// RegionSummaries returns the region fixpoints sorted by name.
func (a *Analysis) RegionSummaries() []RegionSummary {
	names := make([]string, 0, len(a.regions))
	for n := range a.regions {
		names = append(names, n)
	}
	sort.Strings(names)
	out := make([]RegionSummary, 0, len(names))
	for _, n := range names {
		r := a.regions[n]
		out = append(out, RegionSummary{Name: n, Init: r.init.String(),
			Stores: r.stores.String(), Covered: r.covered})
	}
	return out
}

// Format renders a human-readable verdict listing.
func (a *Analysis) Format() string {
	out := fmt.Sprintf("ptrflow: %d blocks, %d insts, %d mem sites (%d ptr / %d not-ptr / %d unknown, %d assumed)\n",
		a.Stats.Blocks, a.Stats.Insts, a.Stats.MemSites,
		a.Stats.PointerSites, a.Stats.NotPointerSites, a.Stats.UnknownSites, a.Stats.AssumedSites)
	for _, s := range a.SortedSites() {
		kind := "load "
		if s.Store {
			kind = "store"
		}
		flag := ""
		if s.Assumed {
			flag = " (assumed)"
		}
		if !s.Reached {
			flag = " (unreached)"
		}
		out += fmt.Sprintf("  %#08x.%d %s %-11s %-8s%s  ; %s\n",
			s.Addr, s.MacroIdx, kind, s.Deref, s.Verdict, flag, s.Inst)
	}
	return out
}
