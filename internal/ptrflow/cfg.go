package ptrflow

import (
	"sort"

	"chex86/internal/asm"
	"chex86/internal/isa"
)

// Block is one basic block: the half-open instruction index range
// [Start, End) over Program.Insts, ending either at a control transfer or
// immediately before the next leader.
type Block struct {
	ID    int
	Start int // first instruction index
	End   int // one past the last instruction index

	// Succs are the dataflow successor blocks. For internal calls this is
	// the callee entry (the return site is reached through the callee's
	// RET edges); for RETs it is every return site of the enclosing
	// functions; for external calls it is the fall-through.
	Succs []int

	// IntraSuccs are the intraprocedural successors used for function-
	// membership discovery: internal calls continue at their return site
	// and RETs terminate the walk.
	IntraSuccs []int

	// Cond, TakenSucc and FallSucc describe a terminating conditional
	// branch for edge-sensitive refinement: TakenSucc/FallSucc are the
	// successor block IDs of the taken and fall-through edges (-1 when
	// the block does not end in a JCC, and possibly equal when the
	// branch targets its own fall-through). Succs deduplicates, so these
	// carry the edge identity Succs cannot.
	Cond      isa.Cond
	TakenSucc int
	FallSucc  int

	// CallSite, Callees and CallFall describe a terminating internal
	// call for context-sensitive valid-path matching: CallSite is the
	// CALL instruction's address (the element pushed onto the call
	// string), Callees the entry block IDs of the possible callees, and
	// CallFall the return-site block (-1 when the call is the last
	// instruction of text). Zero/nil/-1 when the block does not end in a
	// resolved internal CALL — external and unresolved-indirect calls
	// are summarized, not descended into, so they push nothing.
	CallSite uint64
	Callees  []int
	CallFall int
}

// CFG is the control-flow graph of a guest program at macro-op
// granularity, with interprocedural call/return edges resolved from
// direct targets, indirect-branch hint sets, and function discovery.
type CFG struct {
	Prog   *asm.Program
	Blocks []Block

	// Entries are the block IDs of the hart entry points (thread<i>
	// labels, or the text base).
	Entries []int

	// FuncEntries are the addresses discovered as function entry points
	// (call targets).
	FuncEntries []uint64

	// Unresolved lists the addresses of indirect branches with no hint
	// set: their successors are unknown, so code reachable only through
	// them is invisible to the analysis (reported, never silently
	// ignored).
	Unresolved []uint64

	// FuncEntryBlocks maps each function entry address to its entry
	// block ID (entries whose address decodes to no instruction are
	// absent).
	FuncEntryBlocks map[uint64]int

	// RetOwners maps each RET-terminated block to the entry addresses of
	// the functions whose intraprocedural walk reaches it (sorted). A
	// context-sensitive analysis matches a RET under context c back to
	// exactly the callers of these owners that produced c, instead of
	// the merged Succs return edges.
	RetOwners map[int][]uint64

	blockOf []int // instruction index -> block ID
}

// BlockAt returns the block containing the instruction at addr, or nil.
func (g *CFG) BlockAt(addr uint64) *Block {
	in := g.Prog.At(addr)
	if in == nil {
		return nil
	}
	idx := int((addr - g.Prog.TextBase) / uint64(in.EncLen))
	if idx < 0 || idx >= len(g.blockOf) {
		return nil
	}
	return &g.Blocks[g.blockOf[idx]]
}

// instIndex maps an instruction address to its index, or -1.
func instIndex(p *asm.Program, addr uint64) int {
	in := p.At(addr)
	if in == nil {
		return -1
	}
	for i := range p.Insts {
		if p.Insts[i].Addr == addr {
			return i
		}
	}
	return -1
}

// isExternalCall reports whether a direct CALL leaves program text (the
// modeled allocator entry points live outside it).
func isExternalCall(p *asm.Program, in *isa.Inst) bool {
	return in.Op == isa.CALL && in.Dst.Kind != isa.OpReg && p.At(in.Target) == nil
}

// endsBlock reports whether the instruction terminates a basic block.
func endsBlock(in *isa.Inst) bool {
	return in.Op.IsBranch() || in.Op == isa.HLT
}

// RecoverIndirectTargets recovers a conservative indirect-branch target
// hint set from a program's symbol information: every label is a
// candidate target of every indirect JMP/CALL. Workload generators emit
// label-structured code, so labels over-approximate the address-taken
// set; pass a narrower map through Options.IndirectTargets when the
// generator knows the real targets.
func RecoverIndirectTargets(p *asm.Program) map[uint64][]uint64 {
	var labels []uint64
	for _, a := range p.Labels {
		if p.At(a) != nil {
			labels = append(labels, a)
		}
	}
	sort.Slice(labels, func(i, j int) bool { return labels[i] < labels[j] })
	hints := make(map[uint64][]uint64)
	for i := range p.Insts {
		in := &p.Insts[i]
		if (in.Op == isa.JMP || in.Op == isa.CALL) && in.Dst.Kind == isa.OpReg {
			hints[in.Addr] = labels
		}
	}
	return hints
}

// BuildCFG constructs the control-flow graph for prog with the given hart
// count and indirect-branch hints (branch address -> possible targets).
func BuildCFG(prog *asm.Program, harts int, hints map[uint64][]uint64) *CFG {
	g := &CFG{Prog: prog}
	n := len(prog.Insts)
	if n == 0 {
		return g
	}
	if harts <= 0 {
		harts = 1
	}

	// --- Leaders: entries, branch targets, post-branch fall-throughs. ---
	leader := make([]bool, n)
	markAddr := func(addr uint64) {
		if i := instIndex(prog, addr); i >= 0 {
			leader[i] = true
		}
	}

	var entryAddrs []uint64
	for t := 0; t < harts; t++ {
		addr := prog.TextBase
		if a, ok := prog.Lookup(labelThread(t)); ok {
			addr = a
		}
		entryAddrs = append(entryAddrs, addr)
		markAddr(addr)
	}

	funcSet := map[uint64]bool{}
	for i := range prog.Insts {
		in := &prog.Insts[i]
		if !endsBlock(in) {
			continue
		}
		if i+1 < n {
			leader[i+1] = true
		}
		switch in.Op {
		case isa.JMP, isa.JCC:
			if in.Dst.Kind != isa.OpReg {
				markAddr(in.Target)
			}
		case isa.CALL:
			if in.Dst.Kind != isa.OpReg && prog.At(in.Target) != nil {
				markAddr(in.Target)
				funcSet[in.Target] = true
			}
		}
		if in.Dst.Kind == isa.OpReg && (in.Op == isa.JMP || in.Op == isa.CALL) {
			if tgts, ok := hints[in.Addr]; ok && len(tgts) > 0 {
				for _, t := range tgts {
					markAddr(t)
					if in.Op == isa.CALL {
						funcSet[t] = true
					}
				}
			} else {
				g.Unresolved = append(g.Unresolved, in.Addr)
			}
		}
	}
	leader[0] = true

	// --- Carve blocks. ---
	g.blockOf = make([]int, n)
	start := 0
	for i := 0; i < n; i++ {
		endHere := endsBlock(&prog.Insts[i]) || i == n-1 || leader[i+1]
		if !endHere {
			continue
		}
		id := len(g.Blocks)
		g.Blocks = append(g.Blocks, Block{ID: id, Start: start, End: i + 1,
			TakenSucc: -1, FallSucc: -1, CallFall: -1})
		for j := start; j <= i; j++ {
			g.blockOf[j] = id
		}
		start = i + 1
	}

	blockAtIdx := func(i int) int {
		if i < 0 || i >= n {
			return -1
		}
		return g.blockOf[i]
	}
	addSucc := func(list []int, id int) []int {
		if id < 0 {
			return list
		}
		for _, s := range list {
			if s == id {
				return list
			}
		}
		return append(list, id)
	}

	// --- Successors (RET edges filled after function discovery). ---
	type retInfo struct{ block int }
	var rets []retInfo
	// retSites[f] lists the fall-through blocks of calls to function f.
	retSites := map[uint64][]int{}

	for bi := range g.Blocks {
		b := &g.Blocks[bi]
		last := &prog.Insts[b.End-1]
		fall := blockAtIdx(b.End) // block after this one, if any

		switch {
		case last.Op == isa.JMP && last.Dst.Kind != isa.OpReg:
			t := blockAtIdx(instIndex(prog, last.Target))
			b.Succs = addSucc(b.Succs, t)
			b.IntraSuccs = addSucc(b.IntraSuccs, t)

		case last.Op == isa.JCC:
			t := blockAtIdx(instIndex(prog, last.Target))
			b.Succs = addSucc(addSucc(b.Succs, t), fall)
			b.IntraSuccs = addSucc(addSucc(b.IntraSuccs, t), fall)
			b.Cond = last.Cond
			b.TakenSucc = t
			b.FallSucc = fall

		case last.Op == isa.JMP: // indirect
			for _, t := range hints[last.Addr] {
				id := blockAtIdx(instIndex(prog, t))
				b.Succs = addSucc(b.Succs, id)
				b.IntraSuccs = addSucc(b.IntraSuccs, id)
			}

		case last.Op == isa.CALL:
			var callees []uint64
			if last.Dst.Kind == isa.OpReg {
				callees = hints[last.Addr]
			} else if prog.At(last.Target) != nil {
				callees = []uint64{last.Target}
			}
			if len(callees) == 0 {
				// External (or unresolved indirect) call: the callee is
				// summarized by the transfer function; control continues
				// at the return site.
				b.Succs = addSucc(b.Succs, fall)
				b.IntraSuccs = addSucc(b.IntraSuccs, fall)
				break
			}
			b.CallSite = last.Addr
			b.CallFall = fall
			for _, t := range callees {
				id := blockAtIdx(instIndex(prog, t))
				b.Succs = addSucc(b.Succs, id)
				b.Callees = addSucc(b.Callees, id)
				if fall >= 0 {
					retSites[t] = append(retSites[t], fall)
				}
			}
			// Intraprocedurally the caller resumes at the return site.
			b.IntraSuccs = addSucc(b.IntraSuccs, fall)

		case last.Op == isa.RET:
			rets = append(rets, retInfo{block: bi})

		case last.Op == isa.HLT:
			// no successors

		default:
			// Fall-through (next instruction is a leader), or trace end:
			// the final instruction of text without a terminator has no
			// successor — execution falls off the decoded trace.
			b.Succs = addSucc(b.Succs, fall)
			b.IntraSuccs = addSucc(b.IntraSuccs, fall)
		}
	}

	// --- Function discovery: which functions contain each RET. ---
	for f := range funcSet {
		g.FuncEntries = append(g.FuncEntries, f)
	}
	sort.Slice(g.FuncEntries, func(i, j int) bool { return g.FuncEntries[i] < g.FuncEntries[j] })

	owners := map[int][]uint64{} // RET block -> owning function entries
	g.FuncEntryBlocks = map[uint64]int{}
	for _, f := range g.FuncEntries {
		entry := blockAtIdx(instIndex(prog, f))
		if entry < 0 {
			continue
		}
		g.FuncEntryBlocks[f] = entry
		seen := make(map[int]bool)
		stack := []int{entry}
		for len(stack) > 0 {
			bi := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if seen[bi] {
				continue
			}
			seen[bi] = true
			b := &g.Blocks[bi]
			if prog.Insts[b.End-1].Op == isa.RET {
				owners[bi] = append(owners[bi], f)
				continue
			}
			stack = append(stack, b.IntraSuccs...)
		}
	}
	for _, r := range rets {
		b := &g.Blocks[r.block]
		for _, f := range owners[r.block] {
			for _, site := range retSites[f] {
				b.Succs = addSucc(b.Succs, site)
			}
		}
	}
	// owners was built by iterating sorted FuncEntries, so each list is
	// already in ascending entry-address order — deterministic for the
	// per-context return matching that consumes it.
	g.RetOwners = owners

	for _, a := range entryAddrs {
		if id := blockAtIdx(instIndex(prog, a)); id >= 0 {
			g.Entries = addSucc(g.Entries, id)
		}
	}
	sort.Slice(g.Unresolved, func(i, j int) bool { return g.Unresolved[i] < g.Unresolved[j] })
	return g
}

func labelThread(t int) string {
	const digits = "0123456789"
	if t < 10 {
		return "thread" + digits[t:t+1]
	}
	// Multi-digit hart IDs (not used by the current catalog, but cheap).
	s := ""
	for t > 0 {
		s = digits[t%10:t%10+1] + s
		t /= 10
	}
	return "thread" + s
}
