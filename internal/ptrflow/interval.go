package ptrflow

import (
	"fmt"
	"math"
)

// Interval is a signed value-range abstraction [Lo, Hi] with the int64
// extremes acting as -inf/+inf sentinels. An Interval attached to a Value
// means:
//
//   - tag not-ptr or wild: a sound range of the 64-bit value itself,
//     interpreted as a signed integer;
//   - tag ptr with a known region: a sound range of the value's byte
//     offset from the base of the owning allocation region;
//   - anything else (top, region-less ptr, bot): no numeric meaning — the
//     interval must be Full (or Empty for bot) so a meaningless range can
//     never leak into a safety proof.
//
// All arithmetic saturates at the sentinels, which keeps every operation
// sound: saturation only ever widens the range.
type Interval struct {
	Lo int64 `json:"lo"`
	Hi int64 `json:"hi"`
}

const (
	negInf = math.MinInt64
	posInf = math.MaxInt64
)

var (
	ivFull  = Interval{Lo: negInf, Hi: posInf}
	ivEmpty = Interval{Lo: posInf, Hi: negInf}
)

// ivConst is the singleton interval {c}.
func ivConst(c int64) Interval { return Interval{Lo: c, Hi: c} }

// Empty reports whether the interval contains no value.
func (iv Interval) Empty() bool { return iv.Lo > iv.Hi }

// Full reports whether the interval is unbounded on both sides.
func (iv Interval) Full() bool { return iv.Lo == negInf && iv.Hi == posInf }

// Bounded reports whether both ends are finite.
func (iv Interval) Bounded() bool {
	return !iv.Empty() && iv.Lo != negInf && iv.Hi != posInf
}

// String renders the interval with inf sentinels spelled out.
func (iv Interval) String() string {
	if iv.Empty() {
		return "[]"
	}
	lo, hi := "-inf", "+inf"
	if iv.Lo != negInf {
		lo = fmt.Sprintf("%d", iv.Lo)
	}
	if iv.Hi != posInf {
		hi = fmt.Sprintf("%d", iv.Hi)
	}
	return "[" + lo + "," + hi + "]"
}

// ivJoin is the least upper bound (interval hull).
func ivJoin(a, b Interval) Interval {
	if a.Empty() {
		return b
	}
	if b.Empty() {
		return a
	}
	return Interval{Lo: min64(a.Lo, b.Lo), Hi: max64(a.Hi, b.Hi)}
}

// ivMeet is the greatest lower bound (intersection).
func ivMeet(a, b Interval) Interval {
	if a.Empty() || b.Empty() {
		return ivEmpty
	}
	return Interval{Lo: max64(a.Lo, b.Lo), Hi: min64(a.Hi, b.Hi)}
}

// ivWiden is the classic interval widening: any bound that moved since
// the previous iterate jumps straight to its sentinel, so ascending
// chains terminate regardless of loop trip counts. Narrowing sweeps
// (plain re-application of the transfer from the post-fixpoint) recover
// the precision afterwards.
func ivWiden(old, next Interval) Interval {
	if old.Empty() {
		return next
	}
	if next.Empty() {
		return old
	}
	out := old
	if next.Lo < old.Lo {
		out.Lo = negInf
	}
	if next.Hi > old.Hi {
		out.Hi = posInf
	}
	return out
}

// ivContains reports a ⊇ b (every value of b lies in a). The empty
// interval is contained in everything.
func ivContains(a, b Interval) bool {
	if b.Empty() {
		return true
	}
	if a.Empty() {
		return false
	}
	return a.Lo <= b.Lo && a.Hi >= b.Hi
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// satAdd adds with saturation at the sentinels; any operand at a
// sentinel absorbs the addition.
func satAdd(a, b int64) int64 {
	if a == negInf || b == negInf {
		return negInf
	}
	if a == posInf || b == posInf {
		return posInf
	}
	s := a + b
	// Overflow check: operands of the same sign whose sum flips sign.
	if a > 0 && b > 0 && s < 0 {
		return posInf
	}
	if a < 0 && b < 0 && s >= 0 {
		return negInf
	}
	return s
}

// satNeg negates with sentinel swap.
func satNeg(a int64) int64 {
	switch a {
	case negInf:
		return posInf
	case posInf:
		return negInf
	default:
		return -a
	}
}

// satMul multiplies with saturation; sentinel operands saturate by the
// sign of the other side.
func satMul(a, b int64) int64 {
	if a == 0 || b == 0 {
		return 0
	}
	neg := (a < 0) != (b < 0)
	if a == negInf || a == posInf || b == negInf || b == posInf {
		if neg {
			return negInf
		}
		return posInf
	}
	p := a * b
	if p/b != a {
		if neg {
			return negInf
		}
		return posInf
	}
	return p
}

// ivAdd is elementwise interval addition.
func ivAdd(a, b Interval) Interval {
	if a.Empty() || b.Empty() {
		return ivEmpty
	}
	return Interval{Lo: satAdd(a.Lo, b.Lo), Hi: satAdd(a.Hi, b.Hi)}
}

// ivAddConst shifts an interval by a constant.
func ivAddConst(a Interval, c int64) Interval { return ivAdd(a, ivConst(c)) }

// ivSub is interval subtraction a - b.
func ivSub(a, b Interval) Interval {
	if a.Empty() || b.Empty() {
		return ivEmpty
	}
	return Interval{Lo: satAdd(a.Lo, satNeg(b.Hi)), Hi: satAdd(a.Hi, satNeg(b.Lo))}
}

// ivMul is interval multiplication (hull of the four corner products).
func ivMul(a, b Interval) Interval {
	if a.Empty() || b.Empty() {
		return ivEmpty
	}
	p := [4]int64{
		satMul(a.Lo, b.Lo), satMul(a.Lo, b.Hi),
		satMul(a.Hi, b.Lo), satMul(a.Hi, b.Hi),
	}
	out := Interval{Lo: p[0], Hi: p[0]}
	for _, v := range p[1:] {
		out.Lo = min64(out.Lo, v)
		out.Hi = max64(out.Hi, v)
	}
	return out
}

// ivScale multiplies by a non-negative constant scale factor.
func ivScale(a Interval, s int64) Interval { return ivMul(a, ivConst(s)) }

// ivAndMask abstracts AND with a non-negative immediate mask: the result
// is within [0, mask] regardless of the operand, and cannot exceed a
// known non-negative operand. Negative masks (sign-preserving ANDs) are
// not modeled.
func ivAndMask(a Interval, mask int64) Interval {
	if mask < 0 {
		return ivFull
	}
	out := Interval{Lo: 0, Hi: mask}
	if !a.Empty() && a.Lo >= 0 && a.Hi < mask {
		out.Hi = a.Hi
	}
	return out
}

// ivShl abstracts a left shift by a constant amount (multiplication by a
// power of two).
func ivShl(a Interval, k int64) Interval {
	if k < 0 || k > 62 {
		return ivFull
	}
	return ivScale(a, int64(1)<<uint(k))
}

// ivShr abstracts a logical right shift by a constant amount: only sound
// for provably non-negative operands (a logical shift of a negative
// value yields a huge positive one).
func ivShr(a Interval, k int64) Interval {
	if k < 0 || k > 63 || a.Empty() || a.Lo < 0 {
		return ivFull
	}
	hi := a.Hi
	if hi != posInf {
		hi >>= uint(k)
	}
	return Interval{Lo: a.Lo >> uint(k), Hi: hi}
}

// --- Exported interval API -------------------------------------------------
//
// The proof checker (internal/elide) re-derives offset ranges with its own
// transfer function but shares this leaf arithmetic library: interval
// arithmetic is context-free, while the analyzer's transfer, fixpoint and
// widening — the machinery a proof-carrying design must not trust — stay
// behind the Bundle boundary.

// Const returns the singleton interval {c}.
func Const(c int64) Interval { return ivConst(c) }

// FullRange returns the unbounded interval.
func FullRange() Interval { return ivFull }

// EmptyRange returns the empty interval.
func EmptyRange() Interval { return ivEmpty }

// Add returns the interval sum iv + o.
func (iv Interval) Add(o Interval) Interval { return ivAdd(iv, o) }

// AddConst returns iv shifted by c.
func (iv Interval) AddConst(c int64) Interval { return ivAddConst(iv, c) }

// Sub returns the interval difference iv - o.
func (iv Interval) Sub(o Interval) Interval { return ivSub(iv, o) }

// Mul returns the interval product.
func (iv Interval) Mul(o Interval) Interval { return ivMul(iv, o) }

// Scale multiplies by a constant.
func (iv Interval) Scale(s int64) Interval { return ivScale(iv, s) }

// AndMask abstracts AND with an immediate mask.
func (iv Interval) AndMask(m int64) Interval { return ivAndMask(iv, m) }

// ShlBy abstracts a left shift by a constant amount.
func (iv Interval) ShlBy(k int64) Interval { return ivShl(iv, k) }

// ShrBy abstracts a logical right shift by a constant amount.
func (iv Interval) ShrBy(k int64) Interval { return ivShr(iv, k) }

// Join returns the interval hull of iv and o.
func (iv Interval) Join(o Interval) Interval { return ivJoin(iv, o) }

// Meet returns the intersection of iv and o.
func (iv Interval) Meet(o Interval) Interval { return ivMeet(iv, o) }

// Contains reports whether iv contains every value of o.
func (iv Interval) Contains(o Interval) bool { return ivContains(iv, o) }
