package ptrflow

import (
	"testing"

	"chex86/internal/asm"
	"chex86/internal/isa"
)

// --- Dominators ------------------------------------------------------

func TestDominatorsDiamond(t *testing.T) {
	p := build(t, func(b *asm.Builder) {
		b.CmpRI(isa.RAX, 0)
		b.Jcc(isa.CondE, "else")
		b.Nop()
		b.Jmp("join")
		b.Label("else")
		b.Nop()
		b.Label("join")
		b.Hlt()
	})
	g := BuildCFG(p, 1, nil)
	dom := Dominators(g)

	entry := g.BlockAt(p.TextBase).ID
	els := g.BlockAt(p.MustLookup("else")).ID
	join := g.BlockAt(p.MustLookup("join")).ID
	then := -1 // the fall-through arm: entry's successor that is not "else"
	for _, s := range g.Blocks[entry].Succs {
		if s != els {
			then = s
		}
	}
	if then < 0 {
		t.Fatalf("entry succs %v missing fall-through arm", g.Blocks[entry].Succs)
	}

	if !dom.Reachable(entry) || !dom.Reachable(then) || !dom.Reachable(els) || !dom.Reachable(join) {
		t.Fatal("diamond blocks must all be reachable")
	}
	// The entry dominates everything; the arms dominate only themselves.
	for _, b := range []int{then, els, join} {
		if !dom.Dominates(entry, b) {
			t.Errorf("entry must dominate block %d", b)
		}
		if dom.Idom(b) != entry {
			t.Errorf("Idom(%d) = %d, want entry %d", b, dom.Idom(b), entry)
		}
	}
	if dom.Dominates(then, join) || dom.Dominates(els, join) {
		t.Error("neither diamond arm may dominate the join")
	}
	// Entries are immediately dominated by the virtual root.
	if dom.Idom(entry) != -1 {
		t.Errorf("Idom(entry) = %d, want -1 (virtual root)", dom.Idom(entry))
	}
	// Chains: join -> entry is the two-element idom path; then is not on it.
	if ch := dom.chain(join, entry); len(ch) != 2 || ch[0] != join || ch[1] != entry {
		t.Errorf("chain(join, entry) = %v, want [%d %d]", ch, join, entry)
	}
	if ch := dom.chain(join, then); ch != nil {
		t.Errorf("chain(join, then) = %v, want nil (then does not dominate join)", ch)
	}
}

func TestDominatorsLoop(t *testing.T) {
	p := build(t, func(b *asm.Builder) {
		b.MovRI(isa.R9, 0) // preheader
		b.Label("loop")
		b.AddRI(isa.R9, 1)
		b.CmpRI(isa.R9, 4)
		b.Jcc(isa.CondL, "loop")
		b.Hlt()
	})
	g := BuildCFG(p, 1, nil)
	dom := Dominators(g)

	pre := g.BlockAt(p.TextBase).ID
	loop := g.BlockAt(p.MustLookup("loop")).ID
	exitB := -1
	for i := range g.Blocks {
		if i != pre && i != loop {
			exitB = i
		}
	}
	if exitB < 0 {
		t.Fatalf("expected three blocks, got %d", len(g.Blocks))
	}
	if dom.Idom(loop) != pre {
		t.Errorf("Idom(loop) = %d, want preheader %d", dom.Idom(loop), pre)
	}
	if dom.Idom(exitB) != loop {
		t.Errorf("Idom(exit) = %d, want loop %d", dom.Idom(exitB), loop)
	}
	if !dom.Dominates(pre, exitB) {
		t.Error("preheader must dominate the loop exit")
	}
	if dom.Dominates(exitB, loop) {
		t.Error("exit must not dominate the loop body")
	}
}

// --- Guard synthesis -------------------------------------------------

// loopWithPreheader is the induction loop from the elide tests: a
// 32-byte global walked by a loop-bounded index through a
// relocation-seeded pointer.
func loopWithPreheader(b *asm.Builder) {
	b.Global("tab", 0x601000, 32)
	for i := uint64(0); i < 4; i++ {
		b.DataU64(0x601000+8*i, 1)
	}
	b.Global("tabp", 0x600000, 8)
	b.Reloc(0x600000, "tab")
	b.Global("zero", 0x600008, 8)
	b.DataU64(0x600008, 0)
	b.Mov(isa.RegOp(isa.RBX), isa.MemOp(isa.RNone, 0x600000))
	b.Mov(isa.RegOp(isa.R9), isa.MemOp(isa.RNone, 0x600008))
	b.Label("loop")
	b.LoadIdx(isa.R8, isa.RBX, isa.R9, 8, 0)
	b.AddRI(isa.R9, 1)
	b.CmpRI(isa.R9, 4)
	b.Jcc(isa.CondL, "loop")
	b.Hlt()
}

func TestGuardClaimsHoistToPreheader(t *testing.T) {
	p := build(t, loopWithPreheader)
	a := analyze(t, p, Options{Harts: 1})
	bundle := a.ProofBundle()
	if len(bundle.Proofs) == 0 {
		t.Fatal("no proofs; induction loop should prove")
	}
	if len(bundle.Guards) == 0 {
		t.Fatal("no guard claims synthesized")
	}

	g := a.CFG
	dom := Dominators(g)
	loopAddr := p.MustLookup("loop")
	loopBlk := g.BlockAt(loopAddr).ID
	pre := g.BlockAt(p.TextBase).ID

	var cl *GuardClaim
	for i := range bundle.Guards {
		for _, gs := range bundle.Guards[i].Covered {
			if gs.Addr == loopAddr {
				cl = &bundle.Guards[i]
			}
		}
	}
	if cl == nil {
		t.Fatalf("no guard covers the loop dereference %#x:\n%+v", loopAddr, bundle.Guards)
	}
	// Loop-invariant hoisting: the loop body's guard must sit in the
	// preheader, not the loop header itself.
	if cl.Block != pre {
		t.Errorf("guard anchored at block %d, want preheader %d", cl.Block, pre)
	}
	if cl.Addr != g.Prog.Insts[g.Blocks[cl.Block].Start].Addr {
		t.Errorf("guard addr %#x is not its block's leader", cl.Addr)
	}
	if !dom.Dominates(cl.Block, loopBlk) {
		t.Error("guard block must dominate the covered site's block")
	}
	// The fused interval covers the whole widened walk: [0, 32).
	if cl.Region != "tab" || cl.Lo != 0 || cl.End != 32 {
		t.Errorf("fused claim %s+[%d,%d), want tab+[0,32)", cl.Region, cl.Lo, cl.End)
	}
	// The dominance certificate runs from the site block to the anchor.
	for _, gs := range cl.Covered {
		if gs.Addr != loopAddr {
			continue
		}
		if len(gs.Chain) < 2 || gs.Chain[0] != gs.Block || gs.Chain[len(gs.Chain)-1] != cl.Block {
			t.Errorf("chain %v must run site block %d -> anchor %d", gs.Chain, gs.Block, cl.Block)
		}
	}
}

func TestGuardClaimsFuseStraightLine(t *testing.T) {
	p := build(t, func(b *asm.Builder) {
		b.Global("tab", 0x601000, 32)
		for i := uint64(0); i < 4; i++ {
			b.DataU64(0x601000+8*i, 1)
		}
		b.Global("tabp", 0x600000, 8)
		b.Reloc(0x600000, "tab")
		b.Mov(isa.RegOp(isa.RBX), isa.MemOp(isa.RNone, 0x600000))
		b.Load(isa.RAX, isa.RBX, 0)
		b.Load(isa.RCX, isa.RBX, 8)
		b.Load(isa.RDX, isa.RBX, 24)
		b.Hlt()
	})
	a := analyze(t, p, Options{Harts: 1})
	bundle := a.ProofBundle()

	var cl *GuardClaim
	for i := range bundle.Guards {
		if bundle.Guards[i].Region == "tab" {
			cl = &bundle.Guards[i]
		}
	}
	if cl == nil {
		t.Fatalf("no fused guard over region tab:\n%+v", bundle.Guards)
	}
	if len(cl.Covered) != 3 {
		t.Fatalf("guard covers %d sites, want all 3 straight-line loads", len(cl.Covered))
	}
	// Fusion takes the min Lo and max end across covered sites: the three
	// loads touch [0,8), [8,16) and [24,32).
	if cl.Lo != 0 || cl.End != 32 {
		t.Errorf("fused interval [%d,%d), want [0,32)", cl.Lo, cl.End)
	}
	if cl.Store {
		t.Error("load-only guard must not claim writability")
	}
}

func TestGuardClaimsAbsentWhenUnresolved(t *testing.T) {
	// An indirect jump leaves the CFG unresolved: the bundle carries no
	// proofs and therefore no guard claims (fail-closed).
	p := build(t, func(b *asm.Builder) {
		b.Global("tabp", 0x600000, 8)
		b.Lea(isa.RAX, isa.MemOp(isa.RNone, 0))
		b.JmpReg(isa.RAX)
		b.Hlt()
	})
	a := analyze(t, p, Options{Harts: 1})
	bundle := a.ProofBundle()
	if len(bundle.Guards) != 0 {
		t.Fatalf("unresolved control flow must yield no guards, got %d", len(bundle.Guards))
	}
}
