package ptrflow

import (
	"fmt"
	"sort"

	"chex86/internal/asm"
	"chex86/internal/isa"
)

// This file turns an Analysis into a machine-checkable proof bundle: the
// per-block inductive invariant the fixpoint converged to, the region
// summaries it relied on, and one candidate safety proof per dereference
// the analysis believes is always in bounds. The bundle is the *only*
// interface between the analyzer and the elision pass: internal/elide
// re-verifies every claim with its own small checker and discards the
// whole bundle on any mismatch, so a bug in the ~1k lines of fixpoint
// machinery above cannot silently elide an unsafe check (see DESIGN.md
// §11).

// Fact tag names used in serialized proofs. They mirror Tag.String().
const (
	FactBot    = "bot"
	FactNotPtr = "not-ptr"
	FactPtr    = "ptr"
	FactWild   = "wild"
	FactTop    = "top"
)

// Fact is the serialized form of one abstract value: the tag-lattice
// element by name, the owning region for pointers, the interval (numeric
// range, or region-relative offset range for pointers), and the
// init-order taint. The checker consumes Facts structurally — it never
// imports the analyzer's Value operations.
type Fact struct {
	Tag     string   `json:"tag"`
	Region  string   `json:"region,omitempty"`
	Rng     Interval `json:"rng"`
	Assumed bool     `json:"assumed,omitempty"`
}

func factOf(v Value) Fact {
	return Fact{Tag: v.Tag.String(), Region: v.Region, Rng: v.Rng, Assumed: v.Assumed}
}

// SlotFact is one stack-frame slot's fact, keyed by the slot's
// entry-relative RSP offset.
type SlotFact struct {
	Off  int64 `json:"off"`
	Fact Fact  `json:"fact"`
}

// BlockInvariant is the claimed dataflow fact at one basic block's entry.
// Block IDs refer to the CFG BuildCFG derives from the program — the
// checker rebuilds that CFG itself, so the IDs are meaningful to both
// sides without trusting the analyzer's copy.
type BlockInvariant struct {
	Block int `json:"block"`
	// Ctx is the k-limited call-string context the invariant holds in,
	// in pipeline.CallCtx.String() form: "any" for the ⊤ layer (the
	// context-insensitive fixpoint, inductive over the merged Succs
	// graph), "root"/"0x..."/"0x...>0x..." for the context-sensitive
	// layer (inductive over the valid-path call/return edges).
	Ctx   string `json:"ctx"`
	Regs  []Fact `json:"regs"` // indexed by isa.Reg, length isa.NumRegs
	RSPOK bool   `json:"rspOk"`
	RSP   int64  `json:"rsp,omitempty"`
	// FrameOK distinguishes an empty frame (no slot facts) from a
	// destroyed one (slot addressing lost; loads from the frame are top).
	FrameOK bool       `json:"frameOk"`
	Frame   []SlotFact `json:"frame,omitempty"` // sorted by Off
	Free    bool       `json:"free,omitempty"`
}

// RegionClaim is one abstract memory region's claimed store summary. The
// checker recomputes sizes, writability, coverage and the init fact from
// the program image; the Stores fact is the inductive claim it verifies
// against every store in the program.
type RegionClaim struct {
	Name     string `json:"name"`
	Size     uint64 `json:"size,omitempty"` // global byte size; 0 for the heap region
	ReadOnly bool   `json:"readOnly,omitempty"`
	Covered  bool   `json:"covered,omitempty"`
	Init     Fact   `json:"init"`
	Stores   Fact   `json:"stores"`
}

// Proof is one candidate safety proof: the claim that every execution of
// the site dereferences an address inside [Region.base+Lo,
// Region.base+Hi+Size) and that the region is live and (for stores)
// writable there — so the capability check at the site can never fire
// and may be elided. Justification records the fact chain the claim
// rests on, for `chexlint -elide`.
type Proof struct {
	Addr     uint64 `json:"addr"`
	MacroIdx uint8  `json:"macroIdx"`
	// Ctx is the calling context the claim holds in ("any" = every
	// context; the proof then rests on the ⊤-layer invariants). A
	// context-qualified proof licenses elision only when the runtime's
	// live call-string fold matches it exactly.
	Ctx           string   `json:"ctx"`
	Store         bool     `json:"store"`
	Region        string   `json:"region"`
	Lo            int64    `json:"lo"`
	Hi            int64    `json:"hi"`
	Size          uint32   `json:"size"`
	Justification []string `json:"justification"`
}

// Bundle is the complete proof-carrying output of one analysis run.
type Bundle struct {
	Harts int `json:"harts"`

	// CtxK is the call-string depth of the context-sensitive layer
	// (-1 = none: only ⊤ invariants and proofs are present). The
	// checker re-derives every context push at this k.
	CtxK int `json:"ctxK"`

	// HeapMinChunk is the claimed lower bound on every heap chunk's size
	// (0 = unknown; heap proofs are impossible). The checker re-derives
	// it from the allocation sites' size arguments.
	HeapMinChunk uint64 `json:"heapMinChunk,omitempty"`

	// AnyFree claims whether any reachable path may release a heap chunk.
	AnyFree bool `json:"anyFree,omitempty"`

	// IndirectBranches counts register-target JMP/CALL instructions in
	// the program; any makes the CFG untrustworthy for elision, so the
	// bundle then carries no proofs.
	IndirectBranches int `json:"indirectBranches,omitempty"`

	// Unresolved lists indirect branches without target hints.
	Unresolved []uint64 `json:"unresolved,omitempty"`

	// Poison is the accumulated contribution of stores with unbounded
	// effective addresses (it joins into every region's summary).
	Poison Fact `json:"poison"`

	Regions    []RegionClaim    `json:"regions"`    // sorted by name
	Invariants []BlockInvariant `json:"invariants"` // ⊤ layer by block, then per-context by (block, ctx)
	Proofs     []Proof          `json:"proofs"`     // ⊤ layer by (addr, macroIdx), then per-context by (addr, macroIdx, ctx)

	// Guards are the hoisted-guard claims synthesized from the proofs by
	// the dominator/available-checks layer (guards.go), sorted by (block,
	// ctx, region). Like the proofs, they are absent whenever control
	// flow is not fully resolved.
	Guards []GuardClaim `json:"guards,omitempty"`
}

// ProofBundle converts the analysis fixpoint into a serializable proof
// bundle. Sites that fail the safety screen simply have no Proof entry —
// "unknown" is the explicit default, and the pipeline keeps their checks.
func (a *Analysis) ProofBundle() *Bundle {
	b := &Bundle{
		Harts:        a.Harts,
		CtxK:         a.CtxK,
		HeapMinChunk: a.HeapMinChunk,
		AnyFree:      a.AnyFree,
		Poison:       factOf(a.poison),
		Unresolved:   append([]uint64(nil), a.CFG.Unresolved...),
	}
	prog := a.CFG.Prog
	for i := range prog.Insts {
		in := &prog.Insts[i]
		if (in.Op == isa.JMP || in.Op == isa.CALL) && in.Dst.Kind == isa.OpReg {
			b.IndirectBranches++
		}
	}

	for _, rs := range a.RegionSummaries() {
		r := a.regions[rs.Name]
		c := RegionClaim{Name: rs.Name, Covered: r.covered,
			Init: factOf(r.init), Stores: factOf(r.stores)}
		if g := a.globalByName(rs.Name); g != nil {
			c.Size = g.Size
			c.ReadOnly = g.ReadOnly
		}
		b.Regions = append(b.Regions, c)
	}

	for id, st := range a.blockIn {
		if st == nil {
			continue
		}
		b.Invariants = append(b.Invariants, invariantOf(id, ctxAnyName, st))
	}
	// Context-sensitive layer: the discovered (block, context) nodes in
	// canonical (block, context) order — discovery order would also be
	// deterministic, but the sorted form is what the golden-byte test
	// pins and what readers expect.
	ctxKeys := append([]ctxKey(nil), a.ctxOrder...)
	sortCtxKeys(ctxKeys)
	for _, key := range ctxKeys {
		b.Invariants = append(b.Invariants, invariantOf(key.Block, key.Ctx.String(), a.ctxIn[key]))
	}

	// Proofs are meaningless when control flow is not fully resolved:
	// execution could leave the CFG the invariants describe.
	if b.IndirectBranches > 0 || len(b.Unresolved) > 0 {
		return b
	}
	var ctxProofs []Proof
	for _, s := range a.SortedSites() {
		if p, ok := a.candidateProof(s); ok {
			b.Proofs = append(b.Proofs, p)
			// A ⊤ proof already elides the site in every context;
			// per-context proofs there would be redundant weight.
			continue
		}
		for _, sc := range s.SortedCtxs() {
			if p, ok := a.candidateCtxProof(s, sc); ok {
				ctxProofs = append(ctxProofs, p)
			}
		}
	}
	b.Proofs = append(b.Proofs, ctxProofs...)
	b.Guards = a.guardClaims(b)
	return b
}

// ctxAnyName is the serialized ⊤ context (pipeline.CtxAny.String()).
const ctxAnyName = "any"

func sortCtxKeys(keys []ctxKey) {
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].Block != keys[j].Block {
			return keys[i].Block < keys[j].Block
		}
		return keys[i].Ctx.Less(keys[j].Ctx)
	})
}

func invariantOf(id int, ctx string, st *state) BlockInvariant {
	inv := BlockInvariant{Block: id, Ctx: ctx, RSPOK: st.rspOK, Free: st.free,
		FrameOK: st.frame != nil}
	if st.rspOK {
		inv.RSP = st.rsp
	}
	inv.Regs = make([]Fact, isa.NumRegs)
	for i := range st.regs {
		inv.Regs[i] = factOf(st.regs[i])
	}
	if st.frame != nil {
		offs := make([]int64, 0, len(st.frame))
		for off := range st.frame {
			offs = append(offs, off)
		}
		sortInt64s(offs)
		for _, off := range offs {
			inv.Frame = append(inv.Frame, SlotFact{Off: off, Fact: factOf(st.frame[off])})
		}
	}
	return inv
}

func sortInt64s(s []int64) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

func (a *Analysis) globalByName(name string) *asm.Global {
	for i := range a.globals {
		if a.globals[i].Name == name {
			return &a.globals[i]
		}
	}
	return nil
}

// candidateProof screens one site against the safety conditions and, when
// every condition holds, emits the proof with its justification chain.
//
// The conditions (re-verified independently by internal/elide):
//
//  1. the joined deref tag is exactly ptr with a known region — the
//     tracker tags the access with a genuine capability on every path, and
//     the capability is the region's (wild or mixed tags keep their check);
//  2. every path attributes the effective address to that same region
//     with a finite offset interval [Lo, Hi], Lo >= 0;
//  3. Hi + access size fits inside the region: a global's declared size,
//     or the provable minimum heap-chunk size for heap pointers;
//  4. stores additionally require the region to be writable;
//  5. heap accesses additionally require temporal liveness: no release
//     (free/realloc/unknown call) on any path to the site, and under
//     concurrency no release anywhere in the program.
//
// The init-order (Assumed) taint is deliberately *not* disqualifying: the
// elision claim constrains only runtime values the tracker actually
// tagged, and a value read before its initializing store is untagged —
// its dereference gets no capability check with or without elision.
func (a *Analysis) candidateProof(s *Site) (Proof, bool) {
	if !s.Reached {
		return Proof{}, false
	}
	return a.screenProof(s.Addr, s.MacroIdx, ctxAnyName, s.Store, s.Deref, s.EA)
}

// candidateCtxProof screens one site under one calling context: the same
// conditions, over the facts joined along only that context's paths —
// including the temporal release bit, which is per-path state and often
// the fact context sensitivity recovers.
func (a *Analysis) candidateCtxProof(s *Site, sc *SiteCtx) (Proof, bool) {
	return a.screenProof(s.Addr, s.MacroIdx, sc.Ctx.String(), s.Store, sc.Deref, sc.EA)
}

func (a *Analysis) screenProof(addr uint64, macroIdx uint8, ctx string, store bool, deref Value, ea eaFact) (Proof, bool) {
	if deref.Tag != TagPtr || deref.Region == "" {
		return Proof{}, false
	}
	if !ea.OK || ea.Region != deref.Region || !ea.Off.Bounded() || ea.Off.Lo < 0 {
		return Proof{}, false
	}

	var (
		size uint64
		just []string
	)
	kind := "load"
	if store {
		kind = "store"
	}
	just = append(just,
		fmt.Sprintf("deref tag is ptr(%s) on every path", ea.Region),
		fmt.Sprintf("%s address = %s+%s, width %d", kind, ea.Region, ea.Off, ea.Size))

	if ctx != ctxAnyName {
		just = append(just, fmt.Sprintf("claim restricted to calling context %s", ctx))
	}

	if ea.Region == HeapRegion {
		if a.HeapMinChunk == 0 {
			return Proof{}, false
		}
		size = a.HeapMinChunk
		if ea.Free || (a.Harts > 1 && a.AnyFree) {
			return Proof{}, false
		}
		just = append(just,
			fmt.Sprintf("every heap chunk spans >= %d bytes (min allocation-size argument)", size))
		if a.AnyFree {
			just = append(just, "no free/realloc/unknown call on any path to the site")
		} else {
			just = append(just, "no reachable path releases a heap chunk")
		}
	} else {
		g := a.globalByName(ea.Region)
		if g == nil || g.Size == 0 {
			return Proof{}, false
		}
		size = g.Size
		if store && g.ReadOnly {
			return Proof{}, false
		}
		just = append(just, fmt.Sprintf("global %s spans %d bytes", g.Name, g.Size))
		if store {
			just = append(just, fmt.Sprintf("global %s is writable", g.Name))
		}
	}

	end := satAdd(ea.Off.Hi, int64(ea.Size))
	if end == posInf || end < 0 || uint64(end) > size {
		return Proof{}, false
	}
	just = append(just,
		fmt.Sprintf("bounds: 0 <= %d and %d+%d <= %d", ea.Off.Lo, ea.Off.Hi, ea.Size, size),
		"control flow fully resolved: no indirect branches")

	return Proof{Addr: addr, MacroIdx: macroIdx, Ctx: ctx, Store: store,
		Region: ea.Region, Lo: ea.Off.Lo, Hi: ea.Off.Hi, Size: ea.Size,
		Justification: just}, true
}
