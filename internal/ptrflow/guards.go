package ptrflow

import "sort"

// This file is the third analysis layer: dominator-tree construction over
// the recovered CFG plus an available-checks forward dataflow that fuses
// the per-dereference safety proofs of proof.go into one hoisted guard
// per extended basic block (and per calling context where the
// context-sensitive layer refines a site). A guard is a claim that a
// single fused bounds/liveness check at the dominator covers every
// dereference in its covered set on all paths; internal/elide re-verifies
// each claim fail-closed from the serialized certificate alone before the
// pipeline may attribute any suppressed check to a guard.

// GuardSite is one dereference covered by a hoisted guard. Lo/Hi/Size
// restate the site's proven region-relative access interval (the checker
// re-derives it and rejects the guard set when the claim is narrower than
// the derivation), and Chain is the dominance certificate: the block IDs
// from the site's block up the immediate-dominator chain to the guard
// block, both endpoints included.
type GuardSite struct {
	Addr     uint64 `json:"addr"`
	MacroIdx uint8  `json:"macroIdx"`
	Block    int    `json:"block"`
	Store    bool   `json:"store,omitempty"`
	Lo       int64  `json:"lo"`
	Hi       int64  `json:"hi"`
	Size     uint32 `json:"size"`
	Chain    []int  `json:"chain"`
}

// GuardClaim is one hoisted guard: a fused bounds/liveness claim anchored
// at the leader instruction of a dominating block. The fused interval
// [Lo, End) is region-relative and must contain every covered site's
// access span; Store claims writability when any covered site stores.
// One guard exists per (anchor block, calling context, region).
type GuardClaim struct {
	Block   int         `json:"block"`
	Addr    uint64      `json:"addr"` // anchor: the block's leader instruction
	Ctx     string      `json:"ctx"`
	Region  string      `json:"region"`
	Store   bool        `json:"store,omitempty"`
	Lo      int64       `json:"lo"`
	End     int64       `json:"end"`
	Covered []GuardSite `json:"covered"`
}

// DomTree is the dominator tree of a CFG's merged successor graph,
// rooted at a virtual node over every hart entry. It is built with the
// Cooper-Harvey-Kennedy iterative algorithm; the elide checker
// deliberately recomputes dominance with a different (bitset dataflow)
// algorithm so a shared bug cannot certify a forged chain.
type DomTree struct {
	idom []int // block ID -> immediate dominator; root for entries, -1 unreachable
	rpo  []int // block ID -> reverse-postorder number (root = 0)
	root int   // virtual root index (== len(blocks))
}

// Dominators computes the dominator tree over g's merged Succs graph.
func Dominators(g *CFG) *DomTree {
	n := len(g.Blocks)
	t := &DomTree{idom: make([]int, n+1), rpo: make([]int, n+1), root: n}
	for i := range t.idom {
		t.idom[i] = -1
		t.rpo[i] = -1
	}

	succs := func(b int) []int {
		if b == t.root {
			return g.Entries
		}
		return g.Blocks[b].Succs
	}

	// Postorder DFS from the virtual root; rpo numbers are the reverse.
	var post []int
	visited := make([]bool, n+1)
	type frame struct{ b, i int }
	stack := []frame{{t.root, 0}}
	visited[t.root] = true
	for len(stack) > 0 {
		f := &stack[len(stack)-1]
		ss := succs(f.b)
		if f.i < len(ss) {
			s := ss[f.i]
			f.i++
			if s >= 0 && s < n && !visited[s] {
				visited[s] = true
				stack = append(stack, frame{s, 0})
			}
			continue
		}
		post = append(post, f.b)
		stack = stack[:len(stack)-1]
	}
	order := make([]int, 0, len(post)) // reverse postorder, root first
	for i := len(post) - 1; i >= 0; i-- {
		order = append(order, post[i])
	}
	for i, b := range order {
		t.rpo[b] = i
	}

	preds := make([][]int, n+1)
	for _, b := range order {
		for _, s := range succs(b) {
			if s >= 0 && s < n && visited[s] {
				preds[s] = append(preds[s], b)
			}
		}
	}

	t.idom[t.root] = t.root
	intersect := func(a, b int) int {
		for a != b {
			for t.rpo[a] > t.rpo[b] {
				a = t.idom[a]
			}
			for t.rpo[b] > t.rpo[a] {
				b = t.idom[b]
			}
		}
		return a
	}
	for changed := true; changed; {
		changed = false
		for _, b := range order {
			if b == t.root {
				continue
			}
			ni := -1
			for _, p := range preds[b] {
				if t.idom[p] < 0 {
					continue
				}
				if ni < 0 {
					ni = p
				} else {
					ni = intersect(ni, p)
				}
			}
			if ni >= 0 && t.idom[b] != ni {
				t.idom[b] = ni
				changed = true
			}
		}
	}
	return t
}

// Reachable reports whether block b is reachable from an entry.
func (t *DomTree) Reachable(b int) bool {
	return b >= 0 && b < t.root && t.idom[b] >= 0
}

// Idom returns b's immediate dominator block ID, or -1 when b is
// unreachable or immediately dominated by the virtual root (an entry).
func (t *DomTree) Idom(b int) int {
	if !t.Reachable(b) || t.idom[b] == t.root {
		return -1
	}
	return t.idom[b]
}

// Dominates reports whether block a dominates block b (reflexive).
func (t *DomTree) Dominates(a, b int) bool {
	if !t.Reachable(a) || !t.Reachable(b) {
		return false
	}
	for x := b; ; x = t.idom[x] {
		if x == a {
			return true
		}
		if x == t.root {
			return false
		}
	}
}

// chain returns the idom path from block b up to (and including) anchor,
// or nil when anchor is not on b's dominator chain.
func (t *DomTree) chain(b, anchor int) []int {
	if !t.Reachable(b) || !t.Reachable(anchor) {
		return nil
	}
	out := []int{b}
	for x := b; x != anchor; {
		x = t.idom[x]
		if x == t.root || x < 0 {
			return nil
		}
		out = append(out, x)
	}
	return out
}

// guardClaims synthesizes the hoisted-guard claims for a bundle whose
// proofs have already been emitted: each proof's site is assigned an
// anchor block (its extended-basic-block head, hoisted one hop further
// to the loop preheader when the head is a loop header with a unique
// non-back-edge predecessor), proofs sharing (anchor, context, region)
// fuse into one claim, and an available-checks forward dataflow then
// certifies that every covered site sees its guard on all incoming paths
// — any site the dataflow cannot certify is dropped, and a claim with no
// surviving site is discarded.
func (a *Analysis) guardClaims(b *Bundle) []GuardClaim {
	if len(b.Proofs) == 0 {
		return nil
	}
	g := a.CFG
	n := len(g.Blocks)
	dom := Dominators(g)

	// Merged-graph predecessor counts decide extended-basic-block heads:
	// entries and join points start their own EBB.
	preds := make([][]int, n)
	for bi := range g.Blocks {
		if !dom.Reachable(bi) {
			continue
		}
		for _, s := range g.Blocks[bi].Succs {
			if s >= 0 && s < n {
				preds[s] = append(preds[s], bi)
			}
		}
	}
	entry := make([]bool, n)
	for _, e := range g.Entries {
		if e >= 0 && e < n {
			entry[e] = true
		}
	}
	isHead := func(bi int) bool {
		return entry[bi] || len(preds[bi]) != 1 || preds[bi][0] == bi
	}

	type cand struct {
		p     *Proof
		site  int
		guard int
	}
	var cands []cand
	for i := range b.Proofs {
		p := &b.Proofs[i]
		sb := g.BlockAt(p.Addr)
		if sb == nil || !dom.Reachable(sb.ID) {
			continue
		}
		gb := guardBlockFor(sb.ID, dom, preds, isHead, n)
		if gb < 0 || !dom.Dominates(gb, sb.ID) {
			continue
		}
		cands = append(cands, cand{p, sb.ID, gb})
	}
	if len(cands) == 0 {
		return nil
	}

	type groupKey struct {
		block       int
		ctx, region string
	}
	groups := map[groupKey]*GuardClaim{}
	var order []groupKey
	for _, c := range cands {
		ch := dom.chain(c.site, c.guard)
		if ch == nil {
			continue
		}
		end := satAdd(c.p.Hi, int64(c.p.Size))
		k := groupKey{c.guard, c.p.Ctx, c.p.Region}
		cl := groups[k]
		if cl == nil {
			cl = &GuardClaim{
				Block:  c.guard,
				Addr:   g.Prog.Insts[g.Blocks[c.guard].Start].Addr,
				Ctx:    c.p.Ctx,
				Region: c.p.Region,
				Lo:     c.p.Lo,
				End:    end,
			}
			groups[k] = cl
			order = append(order, k)
		}
		if c.p.Lo < cl.Lo {
			cl.Lo = c.p.Lo
		}
		if end > cl.End {
			cl.End = end
		}
		cl.Store = cl.Store || c.p.Store
		cl.Covered = append(cl.Covered, GuardSite{
			Addr: c.p.Addr, MacroIdx: c.p.MacroIdx, Block: c.site,
			Store: c.p.Store, Lo: c.p.Lo, Hi: c.p.Hi, Size: c.p.Size,
			Chain: ch,
		})
	}

	sort.Slice(order, func(i, j int) bool {
		if order[i].block != order[j].block {
			return order[i].block < order[j].block
		}
		if order[i].ctx != order[j].ctx {
			return order[i].ctx < order[j].ctx
		}
		return order[i].region < order[j].region
	})
	claims := make([]GuardClaim, 0, len(order))
	for _, k := range order {
		cl := groups[k]
		sort.Slice(cl.Covered, func(i, j int) bool {
			if cl.Covered[i].Addr != cl.Covered[j].Addr {
				return cl.Covered[i].Addr < cl.Covered[j].Addr
			}
			return cl.Covered[i].MacroIdx < cl.Covered[j].MacroIdx
		})
		claims = append(claims, *cl)
	}

	return availableChecksFilter(g, dom, claims)
}

// guardBlockFor walks a site's unique-predecessor chain up to its
// extended-basic-block head, then hoists one hop further to the loop
// preheader when the head is a loop header whose only non-back-edge
// predecessor dominates it (loop-invariant hoisting under the existing
// widening discipline: the fused claim was already widened over the loop
// body by the fixpoint, so evaluating it once before entry covers every
// iteration).
func guardBlockFor(site int, dom *DomTree, preds [][]int, isHead func(int) bool, n int) int {
	h := site
	for steps := 0; !isHead(h) && steps < n; steps++ {
		h = preds[h][0]
	}
	if !dom.Reachable(h) {
		return -1
	}
	// Preheader hop: h is a loop header when some predecessor is
	// dominated by h (a back edge). If every other predecessor is that
	// kind and exactly one predecessor q is not, q dominates h (any path
	// reaching a latch passed h first), so the guard may move to q.
	var q, backs = -1, 0
	for _, p := range preds[h] {
		if dom.Dominates(h, p) {
			backs++
		} else if q < 0 {
			q = p
		} else {
			q = -2 // more than one non-back-edge pred: no unique preheader
		}
	}
	if backs > 0 && q >= 0 && q != h && dom.Dominates(q, h) {
		return q
	}
	return h
}

// availableChecksFilter runs the available-checks forward dataflow: a
// guard generated at its anchor block propagates along every edge and is
// killed by nothing; a block's in-set is the intersection over its
// predecessors' out-sets (empty at entries — nothing is available before
// the first block executes). A covered site is certified only when its
// guard is available at its block's entry or anchored in the same block;
// uncertified sites are dropped and emptied claims discarded. For claims
// the synthesis placed at genuine dominators this is a no-op, but it is
// the derivation — not the placement heuristic — that decides.
func availableChecksFilter(g *CFG, dom *DomTree, claims []GuardClaim) []GuardClaim {
	if len(claims) == 0 {
		return nil
	}
	n := len(g.Blocks)
	words := (len(claims) + 63) / 64
	gen := make([][]uint64, n)
	newSet := func(full bool) []uint64 {
		s := make([]uint64, words)
		if full {
			for i := range s {
				s[i] = ^uint64(0)
			}
		}
		return s
	}
	for ci := range claims {
		b := claims[ci].Block
		if gen[b] == nil {
			gen[b] = newSet(false)
		}
		gen[b][ci/64] |= 1 << (ci % 64)
	}

	preds := make([][]int, n)
	entry := make([]bool, n)
	for _, e := range g.Entries {
		if e >= 0 && e < n {
			entry[e] = true
		}
	}
	var order []int
	for bi := 0; bi < n; bi++ {
		if !dom.Reachable(bi) {
			continue
		}
		order = append(order, bi)
		for _, s := range g.Blocks[bi].Succs {
			if s >= 0 && s < n {
				preds[s] = append(preds[s], bi)
			}
		}
	}
	sort.Slice(order, func(i, j int) bool { return dom.rpo[order[i]] < dom.rpo[order[j]] })

	in := make([][]uint64, n)
	out := make([][]uint64, n)
	for _, bi := range order {
		in[bi] = newSet(false)
		out[bi] = newSet(!entry[bi]) // ⊤ start for the intersection fixpoint
		if entry[bi] {
			copy(out[bi], gen[bi])
		}
	}
	for changed := true; changed; {
		changed = false
		for _, bi := range order {
			if !entry[bi] {
				for w := range in[bi] {
					in[bi][w] = ^uint64(0)
				}
				if len(preds[bi]) == 0 {
					for w := range in[bi] {
						in[bi][w] = 0
					}
				}
				for _, p := range preds[bi] {
					for w := range in[bi] {
						in[bi][w] &= out[p][w]
					}
				}
			}
			for w := range in[bi] {
				o := in[bi][w]
				if gen[bi] != nil {
					o |= gen[bi][w]
				}
				if out[bi][w] != o {
					out[bi][w] = o
					changed = true
				}
			}
		}
	}

	var kept []GuardClaim
	for ci := range claims {
		cl := claims[ci]
		var covered []GuardSite
		for _, gs := range cl.Covered {
			if gs.Block == cl.Block ||
				(in[gs.Block] != nil && in[gs.Block][ci/64]&(1<<(ci%64)) != 0) {
				covered = append(covered, gs)
			}
		}
		if len(covered) > 0 {
			cl.Covered = covered
			kept = append(kept, cl)
		}
	}
	return kept
}
