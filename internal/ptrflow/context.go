package ptrflow

import (
	"fmt"
	"sort"

	"chex86/internal/decode"
	"chex86/internal/isa"
	"chex86/internal/pipeline"
	"chex86/internal/tracker"
)

// This file implements the k-limited call-string context-sensitive pass
// (DESIGN.md §14). It runs after the context-insensitive fixpoint and
// reuses its region summaries frozen: regions model shared memory whose
// contents outlive any particular calling context, so a per-context
// region summary would be unsound the moment two contexts interleave at
// runtime. What the pass sharpens is everything path-local — register
// tags, intervals, stack slots, and the release bit — by analyzing each
// function once per reachable call-string context with valid-path
// call/return matching: a RET under context c propagates only to the
// callers whose push produced c, never to the other callers the merged
// Succs graph would smear it over.

// ctxKey identifies one (basic block, call-string context) analysis
// node.
type ctxKey struct {
	Block int
	Ctx   pipeline.CallCtx
}

// callerEdge is one registered call into a function: the caller's call
// block and the context the caller was analyzed under. The callee's
// context is Ctx.PushK(site, k); a RET matched back through this edge
// resumes at the call block's fall-through under Ctx — the valid-path
// return.
type callerEdge struct {
	Block int
	Ctx   pipeline.CallCtx
}

// retMatch keys the caller registry by (function entry address, callee
// context).
type retMatch struct {
	Func uint64
	Ctx  pipeline.CallCtx
}

// SiteCtx is the static classification of one memory micro-op in one
// calling context.
type SiteCtx struct {
	Ctx     pipeline.CallCtx
	Verdict Verdict
	Assumed bool
	Deref   Value
	EA      eaFact
}

// SortedCtxs returns the site's per-context records in canonical
// context order (nil when the analysis ran context-insensitively).
func (s *Site) SortedCtxs() []*SiteCtx {
	if len(s.Ctxs) == 0 {
		return nil
	}
	out := make([]*SiteCtx, 0, len(s.Ctxs))
	for _, sc := range s.Ctxs {
		out = append(out, sc)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Ctx.Less(out[j].Ctx) })
	return out
}

// edgeState produces the outgoing state along one successor edge,
// applying conditional-branch refinement on JCC edges. When the taken
// and fall-through edges reach the same block the refinements would
// have to be joined back together, which is the unrefined state — so
// refinement is skipped there.
func (a *Analysis) edgeState(b *Block, st *state, cmp cmpFact, succ int) *state {
	if cmp.ok && b.TakenSucc >= 0 && b.TakenSucc != b.FallSucc &&
		(succ == b.TakenSucc || succ == b.FallSucc) {
		es := st.clone()
		refineByCond(es, cmp, b.Cond, succ == b.TakenSucc)
		return es
	}
	return st
}

// entryAddrOf returns the address of a block's first instruction.
func entryAddrOf(g *CFG, block int) uint64 {
	return g.Prog.Insts[g.Blocks[block].Start].Addr
}

// analyzeContexts runs the context-sensitive fixpoint, the descending
// narrowing sweeps, and the per-context site collection. Regions and
// poison are frozen (a.frozen is set by the caller), so the pass never
// restarts and never perturbs the context-insensitive layer's results.
func (a *Analysis) analyzeContexts(db *tracker.RuleDB, dec *decode.Decoder, buf *[]isa.Uop, maxTransfers int) error {
	g := a.CFG
	k := a.CtxK
	root := pipeline.CtxRoot

	// funcRets[f] lists the RET blocks owned by function f, in block
	// order (derived from the deterministic RetOwners construction).
	funcRets := map[uint64][]int{}
	for id := range g.Blocks {
		for _, f := range g.RetOwners[id] {
			funcRets[f] = append(funcRets[f], id)
		}
	}

	in := map[ctxKey]*state{}
	var order []ctxKey // discovery order: the deterministic iteration spine
	joins := map[ctxKey]int{}
	dirty := map[ctxKey]bool{}
	var work []ctxKey
	push := func(key ctxKey) {
		if !dirty[key] {
			dirty[key] = true
			work = append(work, key)
		}
	}
	// add joins an edge state into a node, widening after the usual
	// tolerance, and schedules the node when it changed.
	add := func(key ctxKey, es *state) {
		if cur, ok := in[key]; !ok {
			in[key] = es.clone()
			order = append(order, key)
			push(key)
		} else if cur.joinInto(es, joins[key] >= widenAfter) {
			joins[key]++
			push(key)
		}
	}

	callers := map[retMatch][]callerEdge{}
	// registerCaller records a call edge; a newly seen caller re-pushes
	// the callee's already-analyzed RET nodes so their out-states reach
	// the new return site.
	registerCaller := func(f uint64, calleeCtx pipeline.CallCtx, e callerEdge) {
		key := retMatch{Func: f, Ctx: calleeCtx}
		for _, have := range callers[key] {
			if have == e {
				return
			}
		}
		callers[key] = append(callers[key], e)
		for _, r := range funcRets[f] {
			if _, ok := in[ctxKey{Block: r, Ctx: calleeCtx}]; ok {
				push(ctxKey{Block: r, Ctx: calleeCtx})
			}
		}
	}

	// propagate distributes one node's post-state along its context-
	// aware edges. During the ascending fixpoint dst is the add closure
	// above; the narrowing sweeps pass a joining-only sink.
	propagate := func(key ctxKey, st *state, cmp cmpFact, dst func(ctxKey, *state)) {
		b := &g.Blocks[key.Block]
		last := &g.Prog.Insts[b.End-1]
		switch {
		case len(b.Callees) > 0:
			calleeCtx := key.Ctx.PushK(b.CallSite, k)
			for _, ce := range b.Callees {
				dst(ctxKey{Block: ce, Ctx: calleeCtx}, st)
				if b.CallFall >= 0 {
					registerCaller(entryAddrOf(g, ce), calleeCtx, callerEdge{Block: key.Block, Ctx: key.Ctx})
				}
			}
		case last.Op == isa.RET:
			for _, f := range g.RetOwners[key.Block] {
				for _, ce := range callers[retMatch{Func: f, Ctx: key.Ctx}] {
					if fall := g.Blocks[ce.Block].CallFall; fall >= 0 {
						dst(ctxKey{Block: fall, Ctx: ce.Ctx}, st)
					}
				}
			}
		default:
			for _, succ := range b.Succs {
				dst(ctxKey{Block: succ, Ctx: key.Ctx}, a.edgeState(b, st, cmp, succ))
			}
		}
	}

	for _, e := range g.Entries {
		add(ctxKey{Block: e, Ctx: root}, newEntryState())
	}

	transfers := 0
	for len(work) > 0 {
		key := work[0]
		work = work[1:]
		dirty[key] = false

		transfers++
		if transfers > maxTransfers {
			return fmt.Errorf("ptrflow: context fixpoint exceeded %d block transfers (diverging lattice?)", maxTransfers)
		}
		st := in[key].clone()
		cmp := a.transferBlock(g, &g.Blocks[key.Block], st, db, dec, buf, nil)
		propagate(key, st, cmp, add)
	}

	// Narrowing: descending re-applications over the discovered node
	// set, iterated in discovery order (map-range order would make the
	// widened results nondeterministic). The caller registry is at its
	// fixpoint, so the valid-path return edges are stable.
	for sweep := 0; sweep < narrowSweeps; sweep++ {
		next := map[ctxKey]*state{}
		for _, e := range g.Entries {
			next[ctxKey{Block: e, Ctx: root}] = newEntryState()
		}
		sink := func(key ctxKey, es *state) {
			if cur, ok := next[key]; ok {
				cur.joinInto(es, false)
			} else {
				next[key] = es.clone()
			}
		}
		for _, key := range order {
			transfers++
			st := in[key].clone()
			cmp := a.transferBlock(g, &g.Blocks[key.Block], st, db, dec, buf, nil)
			propagate(key, st, cmp, sink)
		}
		for _, key := range order {
			if ns, ok := next[key]; ok {
				in[key] = ns
			}
		}
	}
	a.Stats.Transfers += transfers
	a.ctxIn = in
	a.ctxOrder = order

	// Per-context site collection over the narrowed fixpoint.
	for _, key := range order {
		st := in[key].clone()
		ctx := key.Ctx
		a.transferBlock(g, &g.Blocks[key.Block], st, db, dec, buf,
			func(inst *isa.Inst, u *isa.Uop, deref Value, ea eaFact) {
				a.recordSiteCtx(ctx, inst, u, deref, ea)
			})
	}
	a.finishCtxs()
	return nil
}

// recordSiteCtx folds one execution point's facts into the site's
// per-context record. Context reachability is a subset of the merged
// graph's, so the site itself always exists already; a missing site
// would mean the two passes disagree on reachability, which recordSite
// guards by construction.
func (a *Analysis) recordSiteCtx(ctx pipeline.CallCtx, in *isa.Inst, u *isa.Uop, deref Value, ea eaFact) {
	s, ok := a.Sites[SiteKey{Addr: in.Addr, MacroIdx: u.MacroIdx}]
	if !ok {
		return
	}
	if s.Ctxs == nil {
		s.Ctxs = map[pipeline.CallCtx]*SiteCtx{}
	}
	sc, ok := s.Ctxs[ctx]
	if !ok {
		s.Ctxs[ctx] = &SiteCtx{Ctx: ctx, Deref: deref, EA: ea}
		return
	}
	sc.Deref = join(sc.Deref, deref)
	sc.EA = joinEA(sc.EA, ea)
}

// finishCtxs derives per-context verdicts, mirroring finish: the same
// global poison demotion applies, since an unbounded store hits every
// context's view of memory.
func (a *Analysis) finishCtxs() {
	for _, s := range a.Sites {
		for _, sc := range s.Ctxs {
			sc.Verdict = verdictOf(sc.Deref)
			sc.Assumed = sc.Deref.Assumed || a.Stats.UnknownEAStores > 0
		}
	}
}
