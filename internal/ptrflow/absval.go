// Package ptrflow implements a static pointer-flow analysis over decoded
// guest programs: it constructs a control-flow graph from the macro-op
// stream, runs a reaching-definitions dataflow that abstractly interprets
// the pointer-tracking rule database of Table I (the same rules the
// dynamic tracker applies), models pointer spills and reloads through a
// per-frame stack-slot lattice, and emits a per-dereference verdict —
// statically-pointer, statically-not-pointer, or unknown.
//
// The abstract domain models the *tracker's* view of the program, not the
// concrete values: a register's abstract value is the PID tag the
// speculative pointer tracker would assign it, folded over every path.
// That makes the analysis directly comparable with the runtime tag stream
// (see crosscheck.go): a site the analysis proves statically-pointer must
// be tagged by the tracker on every execution, so an untagged execution of
// such a site is a proven tracker false negative.
package ptrflow

import (
	"fmt"

	"chex86/internal/core"
	"chex86/internal/tracker"
)

// Tag is the abstract PID-tag lattice:
//
//	        Top
//	      /  |  \
//	NotPtr  Ptr  Wild
//	      \  |  /
//	        Bot
//
// NotPtr abstracts tag 0 (the tracker would not check the dereference),
// Ptr abstracts positive PIDs (genuine capabilities), Wild abstracts the
// wild-integer tag core.WildPID. Bot is unreached code.
type Tag uint8

const (
	TagBot Tag = iota
	TagNotPtr
	TagPtr
	TagWild
	TagTop
)

var tagNames = [...]string{"bot", "not-ptr", "ptr", "wild", "top"}

// String names the lattice element.
func (t Tag) String() string {
	if int(t) < len(tagNames) {
		return tagNames[t]
	}
	return "tag?"
}

// joinTag is the least upper bound on the tag lattice.
func joinTag(a, b Tag) Tag {
	switch {
	case a == b:
		return a
	case a == TagBot:
		return b
	case b == TagBot:
		return a
	default:
		return TagTop
	}
}

// Value is one abstract tracker tag: the lattice element, the memory
// region a Ptr value points into ("" when unknown, "heap" for allocator
// results, a global's name otherwise), and whether the value was derived
// through a region summary (the no-read-before-write initialization
// assumption, see DESIGN.md §9). Verdicts derived from Assumed values are
// reported separately from sound ones by the cross-checker.
type Value struct {
	Tag     Tag
	Region  string
	Assumed bool

	// Rng is the value-range component (see Interval): a numeric range
	// for not-ptr/wild values, a region-base-relative byte-offset range
	// for region-attributed pointers, and Full otherwise.
	Rng Interval
}

// HeapRegion names the abstract region of allocator-returned pointers.
const HeapRegion = "heap"

var (
	bot    = Value{Tag: TagBot, Rng: ivEmpty}
	notPtr = Value{Tag: TagNotPtr, Rng: ivFull}
	top    = Value{Tag: TagTop, Rng: ivFull}
	// zeroVal abstracts never-written memory: tag 0, value 0.
	zeroVal = Value{Tag: TagNotPtr, Rng: Interval{Lo: 0, Hi: 0}}
)

// numVal builds a not-ptr value carrying a numeric range.
func numVal(iv Interval) Value { return Value{Tag: TagNotPtr, Rng: iv} }

// ptrVal builds a region-attributed pointer carrying an offset range.
func ptrVal(region string, off Interval) Value {
	return Value{Tag: TagPtr, Region: region, Rng: off}
}

// rangeMeaningful reports whether the value's interval carries a defined
// meaning (numeric range, or region-relative offset range).
func (v Value) rangeMeaningful() bool {
	switch v.Tag {
	case TagNotPtr, TagWild:
		return true
	case TagPtr:
		return v.Region != ""
	default:
		return false
	}
}

// numRng returns a sound numeric range for the value: its interval when
// the value is a plain number (or wild integer), Full otherwise — a
// pointer's "numeric value" is an absolute address the analysis never
// bounds.
func numRng(v Value) Interval {
	if v.Tag == TagNotPtr || v.Tag == TagWild {
		return v.Rng
	}
	return ivFull
}

// String renders the value for diagnostics.
func (v Value) String() string {
	s := v.Tag.String()
	if v.Tag == TagPtr && v.Region != "" {
		s += "(" + v.Region + ")"
	}
	if v.rangeMeaningful() && !v.Rng.Full() {
		s += v.Rng.String()
	}
	if v.Assumed {
		s += "~"
	}
	return s
}

// joinRng combines the interval components of a join: the hull when both
// sides' intervals share a meaning (both numeric, or offsets into the
// same region), Full otherwise — mixing an offset with a number would
// fabricate an unsound range.
func joinRng(a, b, out Value) Interval {
	aNum := a.Tag == TagNotPtr || a.Tag == TagWild
	bNum := b.Tag == TagNotPtr || b.Tag == TagWild
	switch {
	case aNum && bNum:
		return ivJoin(a.Rng, b.Rng)
	case a.Tag == TagPtr && b.Tag == TagPtr && a.Region == b.Region && a.Region != "":
		return ivJoin(a.Rng, b.Rng)
	default:
		return ivFull
	}
}

// join is the least upper bound on Values. Regions survive only when both
// sides agree; the Assumed taint is sticky.
func join(a, b Value) Value {
	if a.Tag == TagBot {
		return b
	}
	if b.Tag == TagBot {
		return a
	}
	out := Value{Tag: joinTag(a.Tag, b.Tag), Assumed: a.Assumed || b.Assumed}
	if out.Tag == TagPtr && a.Region == b.Region {
		out.Region = a.Region
	}
	out.Rng = joinRng(a, b, out)
	if !out.rangeMeaningful() {
		out.Rng = ivFull
	}
	return out
}

// widenValue joins b into a, widening the interval component so loop
// iteration counts cannot drive unbounded ascending chains.
func widenValue(a, b Value) Value {
	j := join(a, b)
	if a.Tag == TagBot {
		return j
	}
	j.Rng = ivWiden(a.Rng, j.Rng)
	if !j.rangeMeaningful() {
		j.Rng = ivFull
	}
	return j
}

// eq reports lattice equality (used for fixpoint change detection).
func (v Value) eq(o Value) bool {
	return v.Tag == o.Tag && v.Region == o.Region && v.Assumed == o.Assumed && v.Rng == o.Rng
}

// classifyPID maps a concrete PID to its lattice element, mirroring the
// tracker's three tag classes.
func classifyPID(pid core.PID) Tag {
	switch {
	case pid == 0:
		return TagNotPtr
	case pid == core.WildPID:
		return TagWild
	default:
		return TagPtr
	}
}

// Representative concrete PIDs per lattice element, distinct per source
// position so a rule's output can be attributed to the source it selected
// (which is how Ptr regions flow through the sampled rule closures).
var (
	src1Reps = map[Tag][]core.PID{
		TagBot:    {0},
		TagNotPtr: {0},
		TagPtr:    {5},
		TagWild:   {core.WildPID},
		TagTop:    {0, 5, core.WildPID},
	}
	src2Reps = map[Tag][]core.PID{
		TagBot:    {0},
		TagNotPtr: {0},
		TagPtr:    {7},
		TagWild:   {core.WildPID},
		TagTop:    {0, 7, core.WildPID},
	}
)

// absPropagate abstractly interprets one register rule of the Table I
// database by sampling its concrete Propagate closure with representative
// PIDs from each source's equivalence class and joining the classified
// results. Table I's rules are selections over the {zero, wild, positive}
// classes, so class representatives exercise every branch of the closure.
func absPropagate(r *tracker.Rule, v1, v2 Value) Value {
	out := bot
	for _, a := range src1Reps[v1.Tag] {
		for _, b := range src2Reps[v2.Tag] {
			pid := r.Propagate(a, b)
			// The interval component is computed structurally by the
			// caller (see transferArith); Full is the sound placeholder.
			rv := Value{Tag: classifyPID(pid), Rng: ivFull}
			if rv.Tag == TagPtr {
				// Attribute the surviving pointer to the source whose
				// representative it is, recovering its region.
				switch pid {
				case a:
					rv.Region = v1.Region
				case b:
					rv.Region = v2.Region
				}
			}
			out = join(out, rv)
		}
	}
	out.Assumed = out.Assumed || v1.Assumed || v2.Assumed
	return out
}

// memVal abstracts the alias-table-visible value of a store: the shadow
// alias table records only genuine capabilities, so storing a wild-tagged
// or untagged value behaves as a clear (the tracker's StoreAlias skips
// WildPID and records clears for tag 0). A load of that slot then yields
// tag 0.
func memVal(v Value) Value {
	switch v.Tag {
	case TagBot:
		return bot
	case TagPtr:
		return v
	case TagNotPtr, TagWild:
		return Value{Tag: TagNotPtr, Assumed: v.Assumed, Rng: v.Rng}
	default:
		return Value{Tag: TagTop, Assumed: v.Assumed, Rng: ivFull}
	}
}

// Verdict is the per-dereference static classification.
type Verdict uint8

const (
	// VerdictUnknown: the analysis cannot bound the tracker's tag for the
	// dereference (joined paths disagree, or the value escaped the model).
	VerdictUnknown Verdict = iota
	// VerdictPointer: the tracker must tag this dereference with a
	// non-zero PID on every execution.
	VerdictPointer
	// VerdictNotPointer: the tracker must leave this dereference untagged
	// (no capability check fires) on every execution.
	VerdictNotPointer
)

var verdictNames = [...]string{"unknown", "pointer", "not-pointer"}

// String names the verdict as used in the JSON report.
func (v Verdict) String() string {
	if int(v) < len(verdictNames) {
		return verdictNames[v]
	}
	return fmt.Sprintf("verdict?%d", uint8(v))
}

// verdictOf maps the joined abstract deref value to a verdict, mirroring
// DerefPID's tag classes: Ptr and Wild both mean a non-zero PID (the
// check fires), NotPtr means tag 0, anything else is unbounded.
func verdictOf(v Value) Verdict {
	switch v.Tag {
	case TagPtr, TagWild:
		return VerdictPointer
	case TagNotPtr:
		return VerdictNotPointer
	default:
		return VerdictUnknown
	}
}
