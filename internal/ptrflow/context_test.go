package ptrflow

import (
	"bytes"
	"encoding/json"
	"testing"

	"chex86/internal/asm"
	"chex86/internal/isa"
	"chex86/internal/pipeline"
	"chex86/internal/workload"
)

// twoCallerProgram is the minimal shape the context-sensitive pass was
// built for: a shared helper called from two sites whose callers hold
// pointers to different regions in the same register. The merged-Succs
// return edges smear the two callers' R9 together at both return sites,
// so the context-insensitive layer cannot attribute either dereference
// to a single region; valid-path return matching recovers both.
func twoCallerProgram(b *asm.Builder) {
	b.Global("g1", 0x601000, 64)
	b.Global("g2", 0x601100, 64)
	for i := uint64(0); i < 8; i++ {
		b.DataU64(0x601000+8*i, 1)
		b.DataU64(0x601100+8*i, 1)
	}
	b.Global("p1", 0x600000, 8)
	b.Reloc(0x600000, "g1")
	b.Global("p2", 0x600008, 8)
	b.Reloc(0x600008, "g2")

	b.Mov(isa.RegOp(isa.R9), isa.MemOp(isa.RNone, 0x600000)) // R9 = &g1
	b.Call("helper")
	b.Label("deref1")
	b.Load(isa.RAX, isa.R9, 0)
	b.Mov(isa.RegOp(isa.R9), isa.MemOp(isa.RNone, 0x600008)) // R9 = &g2
	b.Call("helper")
	b.Label("deref2")
	b.Load(isa.RAX, isa.R9, 8)
	b.Hlt()

	b.Label("helper")
	b.Push(isa.RBX)
	b.AddRI(isa.RBX, 1)
	b.Pop(isa.RBX)
	b.Ret()
}

func TestContextProofRecoversCallerRegion(t *testing.T) {
	p := build(t, twoCallerProgram)

	// Insensitive layer: the smeared return state blocks both proofs.
	ins := analyze(t, p, Options{ContextK: -1})
	if pr := proofAt(ins.ProofBundle(), p, "deref1"); pr != nil {
		t.Fatalf("context-insensitive analysis proved deref1 (%s+[%d,%d]) — "+
			"the two-caller merge should have lost the region", pr.Region, pr.Lo, pr.Hi)
	}

	a := analyze(t, p, Options{ContextK: 2})
	bundle := a.ProofBundle()
	pr1 := proofAt(bundle, p, "deref1")
	if pr1 == nil {
		t.Fatalf("context-sensitive analysis has no proof at deref1:\n%s", a.Format())
	}
	if pr1.Region != "g1" || pr1.Ctx != "root" {
		t.Fatalf("deref1 proof region=%q ctx=%q, want g1 in root context", pr1.Region, pr1.Ctx)
	}
	pr2 := proofAt(bundle, p, "deref2")
	if pr2 == nil || pr2.Region != "g2" {
		t.Fatalf("deref2 proof = %+v, want region g2", pr2)
	}
}

// TestProofBundleGoldenBytes pins the bundle serialization's
// determinism: re-analyzing the same program must marshal to the same
// bytes (sorted sites, sorted contexts — any map-iteration ordering
// leak surfaces as a diff here), and the ⊤ ("any") layer must precede
// the per-context layer in both invariants and proofs.
func TestProofBundleGoldenBytes(t *testing.T) {
	var golden []byte
	for i := 0; i < 5; i++ {
		p := build(t, twoCallerProgram)
		a := analyze(t, p, Options{ContextK: 2})
		data, err := json.MarshalIndent(a.ProofBundle(), "", " ")
		if err != nil {
			t.Fatalf("marshal: %v", err)
		}
		if golden == nil {
			golden = data
			continue
		}
		if !bytes.Equal(golden, data) {
			t.Fatalf("bundle serialization not byte-stable across re-analysis (run %d)", i)
		}
	}

	p := build(t, twoCallerProgram)
	bundle := analyze(t, p, Options{ContextK: 2}).ProofBundle()
	seenCtxInv := false
	for _, inv := range bundle.Invariants {
		if inv.Ctx == "any" {
			if seenCtxInv {
				t.Fatal("⊤ invariant after a per-context invariant: layer ordering broken")
			}
		} else {
			seenCtxInv = true
		}
	}
	if !seenCtxInv {
		t.Fatal("bundle has no per-context invariants — context pass did not run")
	}
	seenCtxProof := false
	for i := range bundle.Proofs {
		if bundle.Proofs[i].Ctx == "" || bundle.Proofs[i].Ctx == "any" {
			if seenCtxProof {
				t.Fatal("⊤ proof after a per-context proof: layer ordering broken")
			}
		} else {
			seenCtxProof = true
		}
	}
	if !seenCtxProof {
		t.Fatal("bundle has no per-context proofs")
	}
}

// TestContextDirectRecursion: a self-call's push is collapsed (pushing
// a site already on top of the string is the identity), so direct
// recursion reaches a finite context set and the fixpoint terminates.
func TestContextDirectRecursion(t *testing.T) {
	p := build(t, func(b *asm.Builder) {
		b.Global("tabp", 0x600000, 8)
		b.Reloc(0x600000, "tab")
		b.Global("tab", 0x601000, 32)
		for i := uint64(0); i < 4; i++ {
			b.DataU64(0x601000+8*i, 1)
		}
		b.MovRI(isa.RCX, 3)
		b.Call("rec")
		b.Hlt()
		b.Label("rec")
		b.Mov(isa.RegOp(isa.RBX), isa.MemOp(isa.RNone, 0x600000))
		b.Label("deref")
		b.Load(isa.RAX, isa.RBX, 0)
		b.SubRI(isa.RCX, 1)
		b.CmpRI(isa.RCX, 0)
		b.Jcc(isa.CondE, "done")
		b.Call("rec") // direct recursion: the push collapses
		b.Label("done")
		b.Ret()
	})
	a := analyze(t, p, Options{ContextK: 2})
	s := siteAt(t, a, p, "deref")
	ctxs := s.SortedCtxs()
	if len(ctxs) == 0 {
		t.Fatal("recursive site has no per-context records")
	}
	// Outer call + self call: at most two distinct strings survive the
	// collapse ([outer] and [outer, self]); an unbounded set would mean
	// the collapse failed (and the fixpoint would have diverged first).
	if len(ctxs) > 2 {
		t.Fatalf("direct recursion produced %d contexts, want <= 2", len(ctxs))
	}
	for _, sc := range ctxs {
		if sc.Verdict != VerdictPointer {
			t.Fatalf("ctx %s verdict=%v, want pointer", sc.Ctx, sc.Verdict)
		}
	}
}

// TestContextMutualRecursion: f and g calling each other cycle the
// k-limited string through a finite set of site pairs; the pass must
// terminate and still classify the site in every discovered context.
func TestContextMutualRecursion(t *testing.T) {
	p := build(t, func(b *asm.Builder) {
		b.Global("tabp", 0x600000, 8)
		b.Reloc(0x600000, "tab")
		b.Global("tab", 0x601000, 32)
		for i := uint64(0); i < 4; i++ {
			b.DataU64(0x601000+8*i, 1)
		}
		b.MovRI(isa.RCX, 6)
		b.Call("f")
		b.Hlt()
		b.Label("f")
		b.Mov(isa.RegOp(isa.RBX), isa.MemOp(isa.RNone, 0x600000))
		b.Label("deref")
		b.Load(isa.RAX, isa.RBX, 0)
		b.SubRI(isa.RCX, 1)
		b.CmpRI(isa.RCX, 0)
		b.Jcc(isa.CondE, "fdone")
		b.Call("g")
		b.Label("fdone")
		b.Ret()
		b.Label("g")
		b.CmpRI(isa.RCX, 0)
		b.Jcc(isa.CondE, "gdone")
		b.Call("f")
		b.Label("gdone")
		b.Ret()
	})
	a := analyze(t, p, Options{ContextK: 2})
	s := siteAt(t, a, p, "deref")
	ctxs := s.SortedCtxs()
	if len(ctxs) == 0 {
		t.Fatal("mutually recursive site has no per-context records")
	}
	for _, sc := range ctxs {
		if sc.Ctx.Depth() > 2 {
			t.Fatalf("context %s exceeds k=2", sc.Ctx)
		}
		if sc.Verdict != VerdictPointer {
			t.Fatalf("ctx %s verdict=%v, want pointer", sc.Ctx, sc.Verdict)
		}
	}
}

// TestContextKLimitTruncation: a three-deep call chain keeps only the
// two most recent sites in the innermost function's context.
func TestContextKLimitTruncation(t *testing.T) {
	p := build(t, func(b *asm.Builder) {
		b.Global("tabp", 0x600000, 8)
		b.Reloc(0x600000, "tab")
		b.Global("tab", 0x601000, 32)
		for i := uint64(0); i < 4; i++ {
			b.DataU64(0x601000+8*i, 1)
		}
		b.Label("call_a")
		b.Call("a")
		b.Hlt()
		b.Label("a")
		b.Label("call_b")
		b.Call("b")
		b.Ret()
		b.Label("b")
		b.Label("call_c")
		b.Call("c")
		b.Ret()
		b.Label("c")
		b.Mov(isa.RegOp(isa.RBX), isa.MemOp(isa.RNone, 0x600000))
		b.Label("deref")
		b.Load(isa.RAX, isa.RBX, 0)
		b.Ret()
	})
	a := analyze(t, p, Options{ContextK: 2})
	s := siteAt(t, a, p, "deref")
	ctxs := s.SortedCtxs()
	if len(ctxs) != 1 {
		t.Fatalf("innermost site has %d contexts, want exactly 1", len(ctxs))
	}
	want := pipeline.CallCtx{S0: p.MustLookup("call_b"), S1: p.MustLookup("call_c")}
	if ctxs[0].Ctx != want {
		t.Fatalf("innermost context = %s, want %s (the two most recent call sites, "+
			"call_a truncated by the k-limit)", ctxs[0].Ctx, want)
	}
}

// TestContextUnresolvedIndirectCallFallback: a register-target CALL with
// no hint set resolves to no callees; the CFG summarizes the callee in
// the transfer function and continues at the return site, and the
// context pass must follow that same summarized edge (same context, no
// push) rather than dropping the path.
func TestContextUnresolvedIndirectCallFallback(t *testing.T) {
	p := build(t, func(b *asm.Builder) {
		b.Global("tabp", 0x600000, 8)
		b.Reloc(0x600000, "tab")
		b.Global("tab", 0x601000, 32)
		for i := uint64(0); i < 4; i++ {
			b.DataU64(0x601000+8*i, 1)
		}
		b.MovRI(isa.RAX, 0x400100)
		b.CallReg(isa.RAX) // unresolved: no hint set supplied
		b.Label("after")
		b.Mov(isa.RegOp(isa.RBX), isa.MemOp(isa.RNone, 0x600000))
		b.Label("deref")
		b.Load(isa.RCX, isa.RBX, 0)
		b.Hlt()
	})
	a := analyze(t, p, Options{ContextK: 2})
	if len(a.CFG.Unresolved) != 1 {
		t.Fatalf("unresolved = %v, want exactly the indirect call", a.CFG.Unresolved)
	}
	s := siteAt(t, a, p, "deref")
	ctxs := s.SortedCtxs()
	if len(ctxs) != 1 || !ctxs[0].Ctx.IsRoot() {
		t.Fatalf("post-call site contexts = %v, want exactly [root] via the summarized edge", ctxs)
	}
	// The summarized callee havocs state, so the verdict itself may be
	// unknown — but the context record must agree with the ⊤ layer,
	// which followed the identical summarized edge.
	if ctxs[0].Verdict != s.Verdict {
		t.Fatalf("summarized-path ctx verdict=%v, ⊤ verdict=%v — the passes diverged",
			ctxs[0].Verdict, s.Verdict)
	}
	// An unresolved branch forfeits elision: the bundle must carry no
	// proofs even though the verdict machinery still runs.
	if b := a.ProofBundle(); len(b.Proofs) != 0 {
		t.Fatalf("bundle carries %d proofs despite an unresolved indirect branch", len(b.Proofs))
	}
}

// TestContextVerdictsNeverWeaker sweeps the workload catalog and checks
// the acceptance invariant: a per-context verdict may only refine the
// context-insensitive one, never contradict or weaken it. Per-context
// states join strict subsets of the paths the ⊤ state joins, so a
// definite ⊤ verdict must survive in every context.
func TestContextVerdictsNeverWeaker(t *testing.T) {
	for _, prof := range workload.Catalog() {
		prog, err := prof.Build(0.1)
		if err != nil {
			t.Fatalf("%s: build: %v", prof.Name, err)
		}
		harts := prof.Threads
		if harts <= 0 {
			harts = 1
		}
		a := analyze(t, prog, Options{Harts: harts, ContextK: 2})
		for _, s := range a.SortedSites() {
			for _, sc := range s.SortedCtxs() {
				if s.Verdict != VerdictUnknown && sc.Verdict != s.Verdict {
					t.Errorf("%s %#x.%d ctx %s: verdict %v weaker than insensitive %v",
						prof.Name, s.Addr, s.MacroIdx, sc.Ctx, sc.Verdict, s.Verdict)
				}
				if !s.Assumed && sc.Assumed {
					t.Errorf("%s %#x.%d ctx %s: assumed under context but not insensitively",
						prof.Name, s.Addr, s.MacroIdx, sc.Ctx)
				}
			}
		}
	}
}
