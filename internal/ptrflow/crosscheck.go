package ptrflow

import (
	"context"
	"fmt"
	"sort"

	"chex86/internal/asm"
	"chex86/internal/core"
	"chex86/internal/decode"
	"chex86/internal/isa"
	"chex86/internal/pipeline"
)

// Classification labels for one site's static-vs-dynamic diff.
const (
	// ClassCovered: statically proven pointer, and the tracker tagged the
	// dereference on every execution.
	ClassCovered = "covered"
	// ClassFalseNegative: statically proven pointer on sound grounds, but
	// the tracker left at least one execution untagged — a proven tracker
	// false negative (the capability check silently never fired).
	ClassFalseNegative = "false-negative"
	// ClassFalseNegativeAssumed: static pointer verdict resting on the
	// init-order assumption, with untagged executions. Not a proof —
	// auto-triaged with a rule-gap tag.
	ClassFalseNegativeAssumed = "false-negative-assumed"
	// ClassOverTagged: statically proven not-pointer, but the tracker
	// tagged an execution (a spurious capability check).
	ClassOverTagged = "over-tagged"
	// ClassConsistentUntagged: statically not-pointer and never tagged.
	ClassConsistentUntagged = "consistent-untagged"
	// ClassUnknown: the static analysis could not bound the tag; any
	// runtime behavior is consistent.
	ClassUnknown = "unknown"
	// ClassUnexecuted: a static site the workload never reached at runtime.
	ClassUnexecuted = "unexecuted"
	// ClassUncharted: a runtime dereference at a program-text address the
	// static analysis has no site for (code behind unresolved indirect
	// branches).
	ClassUncharted = "uncharted"
)

// TriageInitOrder tags assumed-verdict mismatches: the static pointer
// claim rests on the assumption that a region's initializing writes
// precede its reads, which the flow-insensitive region summaries cannot
// prove (DESIGN.md §9).
const TriageInitOrder = "rule-gap:init-order-assumption"

// CheckOptions parameterizes a cross-check run.
type CheckOptions struct {
	// Harts is the hart count (defaults to 1).
	Harts int
	// IndirectTargets forwards indirect-branch hints to the analysis.
	IndirectTargets map[uint64][]uint64
	// Variant is the protection variant to replay under; it must use the
	// tracker. Defaults to VariantMicrocodePrediction.
	Variant decode.Variant
	// MaxInsts / MaxCycles bound the replay (0 = unbounded).
	MaxInsts  uint64
	MaxCycles uint64
	// Config overrides the replay pipeline configuration (nil = default).
	Config *pipeline.Config
}

// SiteReport is one memory micro-op's static verdict and runtime tag
// behavior in the JSON report.
type SiteReport struct {
	Addr     string `json:"addr"` // hex
	MacroIdx uint8  `json:"uop"`
	Store    bool   `json:"store"`
	Inst     string `json:"inst"`
	Verdict  string `json:"verdict"`
	Assumed  bool   `json:"assumed,omitempty"`
	Deref    string `json:"deref"`
	Execs    uint64 `json:"execs"`
	Tagged   uint64 `json:"tagged"`
	Wild     uint64 `json:"wild,omitempty"`
	Class    string `json:"class"`
	Triage   string `json:"triage,omitempty"`

	addr uint64
}

// ClassCounts aggregates site classifications (fixed fields, not a map,
// so the JSON is byte-stable).
type ClassCounts struct {
	Covered              int `json:"covered"`
	FalseNegative        int `json:"false_negative"`
	FalseNegativeAssumed int `json:"false_negative_assumed"`
	OverTagged           int `json:"over_tagged"`
	ConsistentUntagged   int `json:"consistent_untagged"`
	Unknown              int `json:"unknown"`
	Unexecuted           int `json:"unexecuted"`
	Uncharted            int `json:"uncharted"`
}

// ExternalReport counts dereferences executed at addresses outside
// program text (the synthetic allocator-exit returns of the heap model).
type ExternalReport struct {
	Addr   string `json:"addr"` // hex
	Execs  uint64 `json:"execs"`
	Tagged uint64 `json:"tagged"`
}

// Report is the full cross-check result.
type Report struct {
	Workload string `json:"workload,omitempty"`
	Variant  string `json:"variant"`
	Harts    int    `json:"harts"`

	// Static analysis shape.
	Insts               int `json:"insts"`
	Blocks              int `json:"blocks"`
	MemSites            int `json:"mem_sites"`
	PointerSites        int `json:"pointer_sites"`
	NotPointerSites     int `json:"not_pointer_sites"`
	UnknownSites        int `json:"unknown_sites"`
	AssumedSites        int `json:"assumed_sites"`
	UnknownEAStores     int `json:"unknown_ea_stores,omitempty"`
	UnresolvedIndirects int `json:"unresolved_indirects,omitempty"`

	// Dynamic replay shape.
	DerefExecs  uint64 `json:"deref_execs"`
	TaggedExecs uint64 `json:"tagged_execs"`
	MacroInsts  uint64 `json:"macro_insts"`
	ChecksRun   uint64 `json:"checks_run"`

	// Coverage is the fraction of dynamic dereferences at statically-
	// proven pointer sites that the tracker actually tagged — the
	// tracker-coverage metric (1.0 = no under-tracking observed).
	Coverage      float64 `json:"coverage"`
	PointerExecs  uint64  `json:"pointer_site_execs"`
	PointerTagged uint64  `json:"pointer_site_tagged"`

	Classes  ClassCounts      `json:"classes"`
	Sites    []SiteReport     `json:"sites"`
	External []ExternalReport `json:"external,omitempty"`

	// FalseNegatives counts proven (untriaged) tracker false negatives;
	// chexlint exits non-zero when it is not 0.
	FalseNegatives        int `json:"false_negatives"`
	TriagedFalseNegatives int `json:"triaged_false_negatives"`
	OverTaggedSites       int `json:"over_tagged_sites"`

	Regions []RegionSummary `json:"regions,omitempty"`
}

// siteRun accumulates one site's runtime tag stream.
type siteRun struct {
	execs  uint64
	tagged uint64
	wild   uint64
}

// Crosscheck statically analyzes prog, replays it through the pipeline
// with the dynamic tracker, and diffs the runtime tag stream against the
// static verdicts.
func Crosscheck(ctx context.Context, prog *asm.Program, opt CheckOptions) (*Report, error) {
	if opt.Harts <= 0 {
		opt.Harts = 1
	}
	variant := opt.Variant
	if variant == decode.VariantInsecure {
		variant = decode.VariantMicrocodePrediction
	}
	if !variant.UsesTracker() {
		return nil, fmt.Errorf("ptrflow: variant %q does not use the pointer tracker", variant)
	}

	an, err := Analyze(prog, Options{Harts: opt.Harts, IndirectTargets: opt.IndirectTargets})
	if err != nil {
		return nil, err
	}

	cfg := pipeline.DefaultConfig()
	if opt.Config != nil {
		cfg = *opt.Config
	}
	cfg.Variant = variant
	cfg.MaxInsts = opt.MaxInsts
	cfg.MaxCycles = opt.MaxCycles
	cfg.WarmupInsts = 0 // the diff wants the whole execution, setup included

	sim, err := pipeline.NewSim(prog, cfg, opt.Harts)
	if err != nil {
		return nil, err
	}

	runs := map[SiteKey]*siteRun{}
	external := map[uint64]*siteRun{}
	textEnd := prog.End()
	var derefExecs, taggedExecs uint64
	sim.TraceDeref = func(rip uint64, u *isa.Uop, pid core.PID) {
		derefExecs++
		tagged := pid != 0
		if tagged {
			taggedExecs++
		}
		var r *siteRun
		if rip >= prog.TextBase && rip < textEnd {
			k := SiteKey{Addr: rip, MacroIdx: u.MacroIdx}
			r = runs[k]
			if r == nil {
				r = &siteRun{}
				runs[k] = r
			}
		} else {
			r = external[rip]
			if r == nil {
				r = &siteRun{}
				external[rip] = r
			}
		}
		r.execs++
		if tagged {
			r.tagged++
		}
		if pid == core.WildPID {
			r.wild++
		}
	}

	res, err := sim.RunContext(ctx)
	if err != nil {
		return nil, err
	}

	rep := &Report{
		Variant:             variant.String(),
		Harts:               opt.Harts,
		Insts:               an.Stats.Insts,
		Blocks:              an.Stats.Blocks,
		MemSites:            an.Stats.MemSites,
		PointerSites:        an.Stats.PointerSites,
		NotPointerSites:     an.Stats.NotPointerSites,
		UnknownSites:        an.Stats.UnknownSites,
		AssumedSites:        an.Stats.AssumedSites,
		UnknownEAStores:     an.Stats.UnknownEAStores,
		UnresolvedIndirects: an.Stats.UnresolvedIndirects,
		DerefExecs:          derefExecs,
		TaggedExecs:         taggedExecs,
		MacroInsts:          res.MacroInsts,
		ChecksRun:           res.ChecksRun,
		Regions:             an.RegionSummaries(),
	}

	// Diff every static site against its runtime tag stream.
	for _, s := range an.SortedSites() {
		r := runs[s.Key()]
		if r == nil {
			r = &siteRun{}
		}
		sr := SiteReport{
			Addr: fmt.Sprintf("%#x", s.Addr), MacroIdx: s.MacroIdx, Store: s.Store,
			Inst: s.Inst, Verdict: s.Verdict.String(), Assumed: s.Assumed,
			Deref: s.Deref.String(), Execs: r.execs, Tagged: r.tagged, Wild: r.wild,
			addr: s.Addr,
		}
		sr.Class, sr.Triage = classify(s, r)
		delete(runs, s.Key())
		countClass(rep, &sr)
		rep.Sites = append(rep.Sites, sr)
	}
	// Runtime dereferences with no static site. Iteration order does not
	// reach the output: rep.Sites is sorted below.
	for k, r := range runs { //determinism:ok
		sr := SiteReport{
			Addr: fmt.Sprintf("%#x", k.Addr), MacroIdx: k.MacroIdx,
			Verdict: VerdictUnknown.String(), Execs: r.execs, Tagged: r.tagged,
			Wild: r.wild, Class: ClassUncharted, addr: k.Addr,
		}
		countClass(rep, &sr)
		rep.Sites = append(rep.Sites, sr)
	}
	sort.Slice(rep.Sites, func(i, j int) bool {
		if rep.Sites[i].addr != rep.Sites[j].addr {
			return rep.Sites[i].addr < rep.Sites[j].addr
		}
		return rep.Sites[i].MacroIdx < rep.Sites[j].MacroIdx
	})

	var extAddrs []uint64
	for a := range external {
		extAddrs = append(extAddrs, a)
	}
	sort.Slice(extAddrs, func(i, j int) bool { return extAddrs[i] < extAddrs[j] })
	for _, a := range extAddrs {
		r := external[a]
		rep.External = append(rep.External,
			ExternalReport{Addr: fmt.Sprintf("%#x", a), Execs: r.execs, Tagged: r.tagged})
	}

	deriveTotals(rep)
	if rep.PointerExecs > 0 {
		rep.Coverage = float64(rep.PointerTagged) / float64(rep.PointerExecs)
	} else {
		rep.Coverage = 1
	}
	return rep, nil
}

// classify buckets one site's static verdict against its tag stream.
// Every site lands in exactly one class: a pointer site whose executions
// carry the wild tag is simultaneously over-tagged (the wild check
// fires) and uncovered (the owning capability's check never does), and
// it counts once — as uncovered — rather than once in each bucket.
func classify(s *Site, r *siteRun) (class, triage string) {
	if r.execs == 0 {
		return ClassUnexecuted, ""
	}
	switch s.Verdict {
	case VerdictPointer:
		// Only properly attributed tags are coverage; a wild tag runs a
		// check against no real capability, so it protects nothing.
		if r.tagged-r.wild == r.execs {
			return ClassCovered, ""
		}
		if s.Assumed {
			return ClassFalseNegativeAssumed, TriageInitOrder
		}
		return ClassFalseNegative, ""
	case VerdictNotPointer:
		if r.tagged == 0 {
			return ClassConsistentUntagged, ""
		}
		if s.Assumed {
			return ClassOverTagged, TriageInitOrder
		}
		return ClassOverTagged, ""
	default:
		return ClassUnknown, ""
	}
}

// countClass folds one site report into the aggregate counters. It only
// touches the per-class histogram and the coverage accumulators; the
// headline mismatch counters are derived from the histogram afterwards
// (deriveTotals), so one site can never be counted in two buckets.
func countClass(rep *Report, sr *SiteReport) {
	switch sr.Class {
	case ClassCovered:
		rep.Classes.Covered++
	case ClassFalseNegative:
		rep.Classes.FalseNegative++
	case ClassFalseNegativeAssumed:
		rep.Classes.FalseNegativeAssumed++
	case ClassOverTagged:
		rep.Classes.OverTagged++
	case ClassConsistentUntagged:
		rep.Classes.ConsistentUntagged++
	case ClassUnknown:
		rep.Classes.Unknown++
	case ClassUnexecuted:
		rep.Classes.Unexecuted++
	case ClassUncharted:
		rep.Classes.Uncharted++
	}
	if sr.Verdict == VerdictPointer.String() {
		// Wild-tagged executions ran a check against no real capability;
		// they count once, as uncovered — never as coverage.
		rep.PointerExecs += sr.Execs
		rep.PointerTagged += sr.Tagged - sr.Wild
	}
}

// deriveTotals computes the headline mismatch counters from the class
// histogram. Each site sits in exactly one histogram bucket, so the
// totals cannot double-count a site that is both over-tagged and
// uncovered.
func deriveTotals(rep *Report) {
	rep.FalseNegatives = rep.Classes.FalseNegative
	rep.TriagedFalseNegatives = rep.Classes.FalseNegativeAssumed
	rep.OverTaggedSites = rep.Classes.OverTagged
}

// Format renders the report's headline for terminals.
func (r *Report) Format() string {
	out := fmt.Sprintf("crosscheck %s [%s, %d hart(s)]\n", r.Workload, r.Variant, r.Harts)
	out += fmt.Sprintf("  static: %d insts, %d blocks, %d mem sites (%d ptr / %d not-ptr / %d unknown, %d assumed)\n",
		r.Insts, r.Blocks, r.MemSites, r.PointerSites, r.NotPointerSites, r.UnknownSites, r.AssumedSites)
	out += fmt.Sprintf("  dynamic: %d macro-ops, %d deref execs (%d tagged), %d checks run\n",
		r.MacroInsts, r.DerefExecs, r.TaggedExecs, r.ChecksRun)
	out += fmt.Sprintf("  coverage: %.4f (%d/%d tagged execs at pointer sites)\n",
		r.Coverage, r.PointerTagged, r.PointerExecs)
	out += fmt.Sprintf("  classes: covered=%d consistent-untagged=%d unknown=%d unexecuted=%d uncharted=%d\n",
		r.Classes.Covered, r.Classes.ConsistentUntagged, r.Classes.Unknown,
		r.Classes.Unexecuted, r.Classes.Uncharted)
	out += fmt.Sprintf("  mismatches: false-negatives=%d triaged=%d over-tagged=%d\n",
		r.FalseNegatives, r.TriagedFalseNegatives, r.OverTaggedSites)
	if r.UnresolvedIndirects > 0 {
		out += fmt.Sprintf("  WARNING: %d unresolved indirect branch(es) — static view incomplete\n", r.UnresolvedIndirects)
	}
	for _, s := range r.Sites {
		if s.Class == ClassFalseNegative || s.Class == ClassFalseNegativeAssumed || s.Class == ClassOverTagged {
			out += fmt.Sprintf("    %s %s.%d %s: verdict=%s deref=%s execs=%d tagged=%d %s\n",
				s.Class, s.Addr, s.MacroIdx, s.Inst, s.Verdict, s.Deref, s.Execs, s.Tagged, s.Triage)
		}
	}
	return out
}
