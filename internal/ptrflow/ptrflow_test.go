package ptrflow

import (
	"context"
	"testing"

	"chex86/internal/asm"
	"chex86/internal/core"
	"chex86/internal/decode"
	"chex86/internal/heap"
	"chex86/internal/isa"
	"chex86/internal/tracker"
)

func build(t *testing.T, f func(b *asm.Builder)) *asm.Program {
	t.Helper()
	b := asm.NewBuilder()
	f(b)
	p, err := b.Build()
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	return p
}

func analyze(t *testing.T, p *asm.Program, opt Options) *Analysis {
	t.Helper()
	a, err := Analyze(p, opt)
	if err != nil {
		t.Fatalf("analyze: %v", err)
	}
	return a
}

// siteAt finds the site of the first memory uop at the labeled instruction.
func siteAt(t *testing.T, a *Analysis, p *asm.Program, label string) *Site {
	t.Helper()
	addr := p.MustLookup(label)
	for _, s := range a.SortedSites() {
		if s.Addr == addr {
			return s
		}
	}
	t.Fatalf("no site at %s (%#x)", label, addr)
	return nil
}

// --- CFG -------------------------------------------------------------

func TestCFGFallThroughAtTraceEnd(t *testing.T) {
	// The decoded trace ends without a terminator: the last block must
	// have no successors instead of a phantom fall-through edge.
	p := build(t, func(b *asm.Builder) {
		b.MovRI(isa.RAX, 1)
		b.Label("skip")
		b.MovRI(isa.RBX, 2) // leader via label; trace ends here
	})
	g := BuildCFG(p, 1, nil)
	if len(g.Blocks) == 0 {
		t.Fatal("no blocks")
	}
	last := g.Blocks[len(g.Blocks)-1]
	if len(last.Succs) != 0 {
		t.Fatalf("trace-end block must have no successors, got %v", last.Succs)
	}
}

func TestCFGIndirectJumpHints(t *testing.T) {
	p := build(t, func(b *asm.Builder) {
		b.Lea(isa.RAX, isa.MemOp(isa.RNone, 0)) // stand-in target computation
		b.Label("jump")
		b.JmpReg(isa.RAX)
		b.Label("dead")
		b.Nop()
		b.Label("target")
		b.Hlt()
	})
	jmpAddr := p.MustLookup("jump")
	// Without hints the branch is reported unresolved.
	g := BuildCFG(p, 1, nil)
	if len(g.Unresolved) != 1 || g.Unresolved[0] != jmpAddr {
		t.Fatalf("unresolved = %#v, want [%#x]", g.Unresolved, jmpAddr)
	}
	// With a hint set the edge resolves.
	target := p.MustLookup("target")
	g = BuildCFG(p, 1, map[uint64][]uint64{jmpAddr: {target}})
	if len(g.Unresolved) != 0 {
		t.Fatalf("hinted branch still unresolved: %v", g.Unresolved)
	}
	jb, tb := g.BlockAt(jmpAddr), g.BlockAt(target)
	found := false
	for _, s := range jb.Succs {
		if s == tb.ID {
			found = true
		}
	}
	if !found {
		t.Fatalf("hint edge %#x -> %#x missing: succs=%v", jmpAddr, target, jb.Succs)
	}
}

func TestCFGCallReturnEdges(t *testing.T) {
	p := build(t, func(b *asm.Builder) {
		b.Call("fn")
		b.Label("after")
		b.Hlt()
		b.Label("fn")
		b.Ret()
	})
	g := BuildCFG(p, 1, nil)
	callB := g.BlockAt(p.TextBase)
	fnB := g.BlockAt(p.MustLookup("fn"))
	afterB := g.BlockAt(p.MustLookup("after"))
	// Dataflow edge: call -> callee entry (not the return site).
	if len(callB.Succs) != 1 || callB.Succs[0] != fnB.ID {
		t.Fatalf("call Succs = %v, want [%d]", callB.Succs, fnB.ID)
	}
	// The RET flows to the call's return site.
	found := false
	for _, s := range fnB.Succs {
		if s == afterB.ID {
			found = true
		}
	}
	if !found {
		t.Fatalf("ret must flow to the return site: succs=%v, want %d", fnB.Succs, afterB.ID)
	}
	// Intraprocedural edge: the caller resumes at the return site.
	found = false
	for _, s := range callB.IntraSuccs {
		if s == afterB.ID {
			found = true
		}
	}
	if !found {
		t.Fatalf("call IntraSuccs = %v, want %d", callB.IntraSuccs, afterB.ID)
	}
}

// --- Dataflow verdicts -----------------------------------------------

func TestAnalyzeHeapPointerVerdicts(t *testing.T) {
	p := build(t, func(b *asm.Builder) {
		b.MovRI(isa.RDI, 64)
		b.CallAddr(heap.MallocEntry)
		b.MovRI(isa.RDX, 42)
		b.Label("st")
		b.Store(isa.RAX, 0, isa.RDX)
		b.Label("ld")
		b.Load(isa.RCX, isa.RAX, 8)
		b.Hlt()
	})
	a := analyze(t, p, Options{})
	st := siteAt(t, a, p, "st")
	if st.Verdict != VerdictPointer || st.Assumed {
		t.Fatalf("heap store: verdict=%v assumed=%v, want sound pointer", st.Verdict, st.Assumed)
	}
	if st.Deref.Region != HeapRegion {
		t.Fatalf("heap store region = %q", st.Deref.Region)
	}
	ld := siteAt(t, a, p, "ld")
	if ld.Verdict != VerdictPointer || ld.Assumed {
		t.Fatalf("heap load: verdict=%v assumed=%v, want sound pointer", ld.Verdict, ld.Assumed)
	}
}

func TestAnalyzeStackSpillReload(t *testing.T) {
	p := build(t, func(b *asm.Builder) {
		b.MovRI(isa.RDI, 64)
		b.CallAddr(heap.MallocEntry)
		b.Push(isa.RAX)     // spill the pointer
		b.MovRI(isa.RAX, 0) // clobber it (wild, per the MOVI rule)
		b.Pop(isa.RBX)      // reload into another register
		b.Label("deref")
		b.Load(isa.RCX, isa.RBX, 0)
		b.Hlt()
	})
	a := analyze(t, p, Options{})
	s := siteAt(t, a, p, "deref")
	if s.Verdict != VerdictPointer || s.Assumed {
		t.Fatalf("spill/reload deref: verdict=%v assumed=%v deref=%v, want sound pointer",
			s.Verdict, s.Assumed, s.Deref)
	}
	if s.Deref.Region != HeapRegion {
		t.Fatalf("reloaded pointer lost its region: %v", s.Deref)
	}
}

func TestAnalyzeNotPointerVerdicts(t *testing.T) {
	p := build(t, func(b *asm.Builder) {
		b.Global("tab", 0x600000, 32)
		for i := uint64(0); i < 4; i++ {
			b.DataU64(0x600000+8*i, 1)
		}
		b.Global("out", 0x700000, 8)
		b.DataU64(0x700000, 0)
		// The index comes from memory (a sound not-pointer), not MOVI
		// (which would tag it wild). The scaled load's EA is unbounded
		// (no pointer base), so its RESULT is Top — the store therefore
		// targets a separate region, or the Top value would feed back
		// into "tab" and conservatively lift the index itself to Top.
		b.Label("idx")
		b.Mov(isa.RegOp(isa.R9), isa.MemOp(isa.RNone, 0x600000))
		b.Label("ld")
		b.LoadIdx(isa.R8, isa.RNone, isa.R9, 8, 0x600000)
		b.Label("st")
		b.Mov(isa.MemOp(isa.RNone, 0x700000), isa.RegOp(isa.R8))
		b.Hlt()
	})
	a := analyze(t, p, Options{})
	for _, label := range []string{"idx", "ld", "st"} {
		s := siteAt(t, a, p, label)
		if s.Verdict != VerdictNotPointer || s.Assumed {
			t.Errorf("%s: verdict=%v assumed=%v, want sound not-pointer", label, s.Verdict, s.Assumed)
		}
	}
}

func TestAnalyzeWildImmediateIsPointer(t *testing.T) {
	p := build(t, func(b *asm.Builder) {
		b.MovRI(isa.RBX, 0x7fff_1000) // MOVI rule: wild tag
		b.Label("deref")
		b.Load(isa.RAX, isa.RBX, 0)
		b.Hlt()
	})
	a := analyze(t, p, Options{})
	s := siteAt(t, a, p, "deref")
	if s.Verdict != VerdictPointer {
		t.Fatalf("wild deref: verdict=%v, want pointer (wild is tagged)", s.Verdict)
	}
	if s.Deref.Tag != TagWild {
		t.Fatalf("wild deref tag=%v", s.Deref.Tag)
	}
}

func TestAnalyzeUnknownEAStoreDemotesToAssumed(t *testing.T) {
	p := build(t, func(b *asm.Builder) {
		b.Global("slot", 0x600000, 8) // uninitialized
		b.MovRI(isa.RDI, 64)
		b.CallAddr(heap.MallocEntry)
		b.Label("sound")
		b.Store(isa.RAX, 0, isa.RDI) // would be a sound pointer site...
		b.Mov(isa.RegOp(isa.RBX), isa.MemOp(isa.RNone, 0x600000))
		b.Store(isa.RBX, 0, isa.RDI) // ...but this store's EA is unknown
		b.Hlt()
	})
	a := analyze(t, p, Options{})
	if a.Stats.UnknownEAStores == 0 {
		t.Fatal("store through an unproven base must count as unknown-EA")
	}
	s := siteAt(t, a, p, "sound")
	if s.Verdict != VerdictPointer || !s.Assumed {
		t.Fatalf("after an unknown-EA store every verdict demotes to assumed: verdict=%v assumed=%v",
			s.Verdict, s.Assumed)
	}
}

func TestAnalyzeRelocGlobalIsSoundPointer(t *testing.T) {
	p := build(t, func(b *asm.Builder) {
		b.Global("buf", 0x601000, 64)
		for i := uint64(0); i < 8; i++ {
			b.DataU64(0x601000+8*i, 0)
		}
		b.Global("bufp", 0x600000, 8)
		b.Reloc(0x600000, "buf") // bufp holds &buf, seeded by the loader
		b.Mov(isa.RegOp(isa.RBX), isa.MemOp(isa.RNone, 0x600000))
		b.Label("deref")
		b.Load(isa.RAX, isa.RBX, 0)
		b.Hlt()
	})
	a := analyze(t, p, Options{})
	s := siteAt(t, a, p, "deref")
	if s.Verdict != VerdictPointer || s.Assumed {
		t.Fatalf("reloc-slot deref: verdict=%v assumed=%v deref=%v, want sound pointer",
			s.Verdict, s.Assumed, s.Deref)
	}
	if s.Deref.Region != "buf" {
		t.Fatalf("reloc deref region=%q, want buf", s.Deref.Region)
	}
}

// --- Loop widening and proof soundness --------------------------------

// proofAt returns the bundle's proof for the labeled instruction's first
// memory uop, or nil.
func proofAt(b *Bundle, p *asm.Program, label string) *Proof {
	addr := p.MustLookup(label)
	for i := range b.Proofs {
		if b.Proofs[i].Addr == addr {
			return &b.Proofs[i]
		}
	}
	return nil
}

// TestProofMonotoneInductionLoop pins widening + narrowing on the
// canonical monotone induction loop: `for i = 0; i < 4; i++ { tab[i] }`.
// The counter's interval climbs each iteration, widening lifts it to
// [0, +inf) so the fixpoint terminates, and the loop-guard refinement
// narrows it back to [0, 3] on the back edge — tight enough to prove
// every access lands inside the 32-byte table, so the site carries a
// safety proof with exact bounds.
func TestProofMonotoneInductionLoop(t *testing.T) {
	p := build(t, inductionLoop(4))
	a := analyze(t, p, Options{})
	pr := proofAt(a.ProofBundle(), p, "loop")
	if pr == nil {
		t.Fatalf("induction loop access has no safety proof:\n%s", a.Format())
	}
	if pr.Region != "tab" || pr.Lo != 0 || pr.Hi != 24 || pr.Size != 8 {
		t.Fatalf("proof bounds %s+[%d,%d] width %d, want tab+[0,24] width 8",
			pr.Region, pr.Lo, pr.Hi, pr.Size)
	}
}

// inductionLoop builds `for i = 0; i < trip; i++ { tab[i] }` over a
// 32-byte table: a relocation-seeded pointer base (sound ptr), an index
// loaded from a zeroed global (sound not-ptr [0,0]), and the loop guard
// as the only bound on the index.
func inductionLoop(trip int64) func(b *asm.Builder) {
	return func(b *asm.Builder) {
		b.Global("tab", 0x601000, 32)
		for i := uint64(0); i < 4; i++ {
			b.DataU64(0x601000+8*i, 1)
		}
		b.Global("tabp", 0x600000, 8)
		b.Reloc(0x600000, "tab")
		b.Global("zero", 0x600008, 8)
		b.DataU64(0x600008, 0)
		b.Mov(isa.RegOp(isa.RBX), isa.MemOp(isa.RNone, 0x600000)) // RBX = &tab
		b.Mov(isa.RegOp(isa.R9), isa.MemOp(isa.RNone, 0x600008))  // R9 = 0
		b.Label("loop")
		b.LoadIdx(isa.R8, isa.RBX, isa.R9, 8, 0)
		b.AddRI(isa.R9, 1)
		b.CmpRI(isa.R9, trip)
		b.Jcc(isa.CondL, "loop")
		b.Hlt()
	}
}

// TestProofRejectsOOBTripCount is the regression test for the elision
// soundness hazard: the same induction loop as above, but a trip count
// whose last iterations run past the region's end, must never yield a
// proven-safe site — even though the counter's narrowed interval is
// bounded. Eight iterations at stride 8 touch [0, 63] of the 32-byte
// table.
func TestProofRejectsOOBTripCount(t *testing.T) {
	p := build(t, inductionLoop(8))
	a := analyze(t, p, Options{})
	s := siteAt(t, a, p, "loop")
	if s.Verdict != VerdictPointer {
		t.Fatalf("loop access verdict=%v, want pointer (only the bounds differ from the safe loop)", s.Verdict)
	}
	if pr := proofAt(a.ProofBundle(), p, "loop"); pr != nil {
		t.Fatalf("OOB trip-count loop got a safety proof %s+[%d,%d] width %d",
			pr.Region, pr.Lo, pr.Hi, pr.Size)
	}
}

// TestProofRejectsRetaggedLoopPointer pins the other widening hazard: a
// pointer re-derived (advanced) inside the loop body. Its region-
// relative offset climbs without a guard on the offset itself, so
// widening lifts it to [0, +inf) and the walking dereference must stay
// unproven — the trip count (16 × stride 8 across a 64-byte chunk) runs
// out of bounds.
func TestProofRejectsRetaggedLoopPointer(t *testing.T) {
	p := build(t, func(b *asm.Builder) {
		b.MovRI(isa.RDI, 64)
		b.CallAddr(heap.MallocEntry)
		b.MovRR(isa.RBX, isa.RAX)
		b.MovRI(isa.RCX, 16)
		b.Label("walk")
		b.Store(isa.RBX, 0, isa.RCX)
		b.AddRI(isa.RBX, 8) // re-tagged: pointer advances every iteration
		b.SubRI(isa.RCX, 1)
		b.CmpRI(isa.RCX, 0)
		b.Jcc(isa.CondNE, "walk")
		b.Hlt()
	})
	a := analyze(t, p, Options{})
	s := siteAt(t, a, p, "walk")
	if s.Verdict != VerdictPointer {
		t.Fatalf("walking store verdict=%v, want pointer (tag is known, bounds are not)", s.Verdict)
	}
	if pr := proofAt(a.ProofBundle(), p, "walk"); pr != nil {
		t.Fatalf("walking heap store got a safety proof %s+[%d,%d] width %d — widened offset must stay unproven",
			pr.Region, pr.Lo, pr.Hi, pr.Size)
	}
}

// --- Abstract propagation soundness ----------------------------------

// TestAbsPropagateSoundness checks, for every register rule in the
// database, that abstract propagation over-approximates the concrete
// closure: for all abstract operand pairs and all concrete PIDs they
// concretize to, the concrete result classifies within the abstract
// result's tag.
func TestAbsPropagateSoundness(t *testing.T) {
	conc := map[Tag][]core.PID{
		TagNotPtr: {0},
		TagPtr:    {5, 7},
		TagWild:   {core.WildPID},
		TagTop:    {0, 5, 7, core.WildPID},
	}
	absIn := []Value{notPtr, {Tag: TagPtr, Region: HeapRegion}, {Tag: TagWild}, top}
	rules := tracker.NewRuleDB().Rules()
	for i := range rules {
		r := &rules[i]
		if r.Propagate == nil {
			continue
		}
		for _, v1 := range absIn {
			for _, v2 := range absIn {
				got := absPropagate(r, v1, v2)
				for _, c1 := range conc[v1.Tag] {
					for _, c2 := range conc[v2.Tag] {
						ct := classifyPID(r.Propagate(c1, c2))
						if joinTag(got.Tag, ct) != got.Tag {
							t.Errorf("%s %s: abs(%v,%v)=%v does not cover concrete (%d,%d)->%v",
								r.Name, r.Mode, v1, v2, got, c1, c2, ct)
						}
					}
				}
			}
		}
	}
}

// --- Cross-check ------------------------------------------------------

func TestCrosscheckCleanProgram(t *testing.T) {
	p := build(t, func(b *asm.Builder) {
		b.MovRI(isa.RDI, 64)
		b.CallAddr(heap.MallocEntry)
		b.MovRR(isa.RBX, isa.RAX)
		b.MovRI(isa.RCX, 8)
		b.Label("loop")
		b.MovRI(isa.RDX, 42)
		b.Store(isa.RBX, 0, isa.RDX)
		b.Load(isa.RDX, isa.RBX, 0)
		b.AddRI(isa.RBX, 8)
		b.SubRI(isa.RCX, 1)
		b.CmpRI(isa.RCX, 0)
		b.Jcc(isa.CondNE, "loop")
		b.MovRR(isa.RDI, isa.RAX)
		b.CallAddr(heap.FreeEntry)
		b.Hlt()
	})
	rep, err := Crosscheck(context.Background(), p, CheckOptions{MaxCycles: 1_000_000})
	if err != nil {
		t.Fatalf("crosscheck: %v", err)
	}
	if rep.FalseNegatives != 0 {
		t.Fatalf("clean program reported %d false negatives:\n%s", rep.FalseNegatives, rep.Format())
	}
	if rep.OverTaggedSites != 0 {
		t.Fatalf("clean program reported over-tagging:\n%s", rep.Format())
	}
	if rep.Coverage != 1.0 {
		t.Fatalf("coverage=%v, want 1.0:\n%s", rep.Coverage, rep.Format())
	}
	if rep.PointerExecs == 0 {
		t.Fatal("the loop derefs a heap pointer; pointer-site execs must be non-zero")
	}
	if rep.Classes.Uncharted != 0 {
		t.Fatalf("uncharted sites in a fully resolved program:\n%s", rep.Format())
	}
}

func TestClassifyCountsMixedSiteOnce(t *testing.T) {
	// A pointer-verdict site whose tag stream mixes wild tags (a check
	// runs, but against no real capability — over-tagging) with untagged
	// executions (no check at all — uncovered) must land in exactly one
	// classification bucket and be debited from the coverage metric
	// exactly once.
	s := &Site{Verdict: VerdictPointer}
	r := &siteRun{execs: 10, tagged: 4, wild: 3}
	class, _ := classify(s, r)
	if class != ClassFalseNegative {
		t.Fatalf("mixed wild/untagged pointer site classified %q, want %q", class, ClassFalseNegative)
	}

	rep := &Report{}
	sr := &SiteReport{Verdict: VerdictPointer.String(), Execs: r.execs,
		Tagged: r.tagged, Wild: r.wild, Class: class}
	countClass(rep, sr)
	deriveTotals(rep)
	if rep.FalseNegatives != 1 || rep.OverTaggedSites != 0 {
		t.Fatalf("site counted fn=%d over-tagged=%d, want exactly one false negative",
			rep.FalseNegatives, rep.OverTaggedSites)
	}
	// Coverage credit: only the 1 properly attributed tag out of 10.
	if rep.PointerExecs != 10 || rep.PointerTagged != 1 {
		t.Fatalf("coverage accumulators execs=%d tagged=%d, want 10/1",
			rep.PointerExecs, rep.PointerTagged)
	}

	// A fully wild-tagged pointer site is not coverage either: the
	// pre-fix classifier called this covered because tagged == execs.
	allWild := &siteRun{execs: 5, tagged: 5, wild: 5}
	if class, _ := classify(s, allWild); class != ClassFalseNegative {
		t.Fatalf("fully wild-tagged pointer site classified %q, want %q", class, ClassFalseNegative)
	}

	// Headline counters are derived from the histogram, never
	// incremented independently: they must agree by construction.
	rep2 := &Report{}
	for _, c := range []string{ClassFalseNegative, ClassFalseNegativeAssumed,
		ClassOverTagged, ClassOverTagged, ClassCovered} {
		countClass(rep2, &SiteReport{Class: c})
	}
	deriveTotals(rep2)
	if rep2.FalseNegatives != rep2.Classes.FalseNegative ||
		rep2.TriagedFalseNegatives != rep2.Classes.FalseNegativeAssumed ||
		rep2.OverTaggedSites != rep2.Classes.OverTagged {
		t.Fatalf("headline counters diverge from class histogram: %+v", rep2)
	}
}

func TestCrosscheckRejectsTrackerlessVariant(t *testing.T) {
	p := build(t, func(b *asm.Builder) { b.Hlt() })
	// ASan does not use the tracker: the diff would be vacuous.
	if _, err := Crosscheck(context.Background(), p, CheckOptions{Variant: decode.VariantASan}); err == nil {
		t.Fatal("want error for a tracker-less variant")
	}
}

func TestReportJSONStable(t *testing.T) {
	p := build(t, func(b *asm.Builder) {
		b.MovRI(isa.RDI, 32)
		b.CallAddr(heap.MallocEntry)
		b.Store(isa.RAX, 0, isa.RDI)
		b.Hlt()
	})
	run := func() *Report {
		rep, err := Crosscheck(context.Background(), p, CheckOptions{MaxCycles: 1_000_000})
		if err != nil {
			t.Fatalf("crosscheck: %v", err)
		}
		return rep
	}
	a, b := run().Format(), run().Format()
	if a != b {
		t.Fatalf("reports differ across identical runs:\n--- a ---\n%s--- b ---\n%s", a, b)
	}
}
