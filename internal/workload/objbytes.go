package workload

import "chex86/internal/objfile"

// ProgramBytes returns the deterministic object-file encoding of the
// profile's built program at the given scale. Profile generation is seeded
// and objfile.Encode emits sections in a fixed order (labels sorted), so
// equal (profile, scale) pairs always yield identical bytes. The campaign
// cache uses this as the "workload" component of its content address:
// editing a profile in the catalog invalidates exactly that workload's
// cached results and no others.
func (p *Profile) ProgramBytes(scale float64) ([]byte, error) {
	prog, err := p.Build(scale)
	if err != nil {
		return nil, err
	}
	return objfile.Encode(prog), nil
}
