package workload

import (
	"testing"

	"chex86/internal/asm"
	"chex86/internal/decode"
	"chex86/internal/emu"
	"chex86/internal/pipeline"
)

const emuAllocEnter = emu.EvAllocEnter

func emuMachine(prog *asm.Program, p *Profile) *emu.Machine {
	harts := p.Threads
	if harts == 0 {
		harts = 1
	}
	return emu.New(prog, emu.Options{Harts: harts, MaxInsts: 3_000_000})
}

func TestCatalogBuilds(t *testing.T) {
	for _, p := range Catalog() {
		if _, err := p.Build(0.2); err != nil {
			t.Errorf("%s: build failed: %v", p.Name, err)
		}
	}
}

// TestWorkloadsRunCleanWithChecker executes a scaled-down copy of every
// workload under the default CHEx86 variant with the hardware checker
// enabled: no violations (the workloads are well-behaved) and a high
// checker agreement rate (the Table I rules track the pointers).
func TestWorkloadsRunCleanWithChecker(t *testing.T) {
	for _, p := range Catalog() {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			prog := p.MustBuild(0.15)
			cfg := pipeline.DefaultConfig()
			cfg.Variant = decode.VariantMicrocodePrediction
			cfg.EnableChecker = true
			cfg.MaxInsts = 120_000
			harts := p.Threads
			if harts == 0 {
				harts = 1
			}
			sim := pipeline.New(prog, cfg, harts)
			res, err := sim.Run()
			if err != nil {
				t.Fatalf("run: %v", err)
			}
			if len(res.Violations) != 0 {
				t.Fatalf("unexpected violation: %v (of %d)", res.Violations[0], len(res.Violations))
			}
			if res.MacroInsts == 0 {
				t.Fatal("no instructions executed")
			}
			if res.Checker.Validations > 0 && res.Checker.MismatchRate() > 0.01 {
				t.Errorf("checker mismatch rate %.4f too high (%d/%d); first: %v",
					res.Checker.MismatchRate(), res.Checker.Mismatches,
					res.Checker.Validations, firstMismatch(res))
			}
		})
	}
}

func firstMismatch(res *pipeline.Result) any {
	if len(res.Mismatches) > 0 {
		return res.Mismatches[0]
	}
	return "none"
}

// TestBuildDeterminism: the generator must be reproducible — identical
// programs for identical profiles.
func TestBuildDeterminism(t *testing.T) {
	p := ByName("gcc")
	a := p.MustBuild(0.2)
	b := p.MustBuild(0.2)
	if len(a.Insts) != len(b.Insts) {
		t.Fatalf("instruction counts differ: %d vs %d", len(a.Insts), len(b.Insts))
	}
	for i := range a.Insts {
		if a.Insts[i] != b.Insts[i] {
			t.Fatalf("instruction %d differs", i)
		}
	}
	if len(a.Data) != len(b.Data) {
		t.Fatal("data initializers differ")
	}
}

// TestScaleDoesNotMutateCatalog guards the copy-on-build semantics.
func TestScaleDoesNotMutateCatalog(t *testing.T) {
	p := ByName("perlbench")
	rounds := p.Rounds
	p.MustBuild(0.1)
	if p.Rounds != rounds {
		t.Fatal("Build must not mutate the shared catalog profile")
	}
}

// TestSetupInstsEstimate: the warmup estimate must cover the allocation
// phase (first EvAllocExit of the main rounds comes after all initial
// allocations) without swallowing the whole run.
func TestSetupInstsEstimate(t *testing.T) {
	for _, p := range Catalog() {
		est := p.SetupInsts()
		if est == 0 {
			t.Errorf("%s: zero setup estimate", p.Name)
		}
		prog := p.MustBuild(0.15)
		// Count the actual instructions up to the last initial allocation.
		m := emuMachine(prog, p)
		setupEnd := uint64(0)
		allocs := 0
		for {
			rec, err := m.Step()
			if err != nil || rec == nil {
				break
			}
			if rec.Event == emuAllocEnter {
				allocs++
				if allocs == p.MaxLive {
					setupEnd = m.TotalInsts()
					break
				}
			}
		}
		if setupEnd == 0 {
			t.Errorf("%s: never finished the allocation phase", p.Name)
			continue
		}
		if est < setupEnd {
			t.Errorf("%s: setup estimate %d below the actual phase end %d", p.Name, est, setupEnd)
		}
		if est > setupEnd*3 {
			t.Errorf("%s: setup estimate %d wildly above the actual %d", p.Name, est, setupEnd)
		}
	}
}

// TestProfileShapeInvariants pins catalog-wide invariants the figures
// depend on.
func TestProfileShapeInvariants(t *testing.T) {
	for _, p := range Catalog() {
		if p.TotalAllocs() < p.MaxLive {
			t.Errorf("%s: total allocations below the live set", p.Name)
		}
		if p.Chase && p.AllocSize < 256 {
			t.Errorf("%s: chase buffers must hold at least 4 nodes", p.Name)
		}
		if p.AllocSize%8 != 0 {
			t.Errorf("%s: allocation sizes must be 8-byte multiples", p.Name)
		}
		if p.VisitsPerRound() == 0 {
			t.Errorf("%s: no visit schedule", p.Name)
		}
	}
	names := Names()
	if names[0] != "perlbench" || names[len(names)-1] != "canneal" {
		t.Error("catalog must preserve the paper's Figure 6 order")
	}
}
