package workload

import "chex86/internal/patterns"

// Suite labels.
const (
	SuiteSPEC   = "SPEC CPU2017"
	SuitePARSEC = "PARSEC 2.1"
)

// Catalog returns the 14 benchmark profiles in the paper's Figure 6 order:
// the C/C++ SPEC CPU2017 subset, then the PARSEC 2.1 subset. The parameters
// model each benchmark's published character: allocation counts follow the
// Figure 3 shape (scaled down ~3 orders of magnitude with ratios
// preserved), pointer-chasing intensity and churn mark the paper's outliers
// (mcf, xalancbmk, leela, canneal), and FP/branch mixes follow the
// benchmarks' domains.
func Catalog() []*Profile {
	return []*Profile{
		{
			Name: "perlbench", Suite: SuiteSPEC,
			About:   "interpreter: many small allocations, batchy pointer reuse",
			MaxLive: 400, ChurnPerRound: 16, Rounds: 16,
			AllocSize: 64, SweepLen: 4, ComputeOps: 24, InnerCompute: 8, FPRatio: 0,
			NoiseBranches: 1, SpillEvery: 4,
			Patterns: []PatternSpec{
				{patterns.BatchStride, 144}, // perlbench: most Batch+Stride
				{patterns.RepeatStride, 48},
				{patterns.RandomNoStride, 24},
			},
		},
		{
			Name: "gcc", Suite: SuiteSPEC,
			About:   "compiler: IR churn, mixed access order",
			MaxLive: 600, ChurnPerRound: 24, Rounds: 12,
			AllocSize: 96, SweepLen: 4, ComputeOps: 24, InnerCompute: 8, FPRatio: 0,
			NoiseBranches: 2, SpillEvery: 3,
			Patterns: []PatternSpec{
				{patterns.Stride, 96},
				{patterns.BatchNoStride, 72},
				{patterns.RandomNoStride, 48},
			},
		},
		{
			Name: "mcf", Suite: SuiteSPEC,
			About:   "network simplex: few huge arrays, relentless pointer chasing",
			MaxLive: 96, ChurnPerRound: 0, Rounds: 24,
			AllocSize: 8192, Chase: true, ChaseLen: 24, ComputeOps: 4, InnerCompute: 1, FPRatio: 0,
			NoiseBranches: 1, SpillEvery: 2,
			Patterns: []PatternSpec{
				{patterns.Stride, 64},
				{patterns.RandomNoStride, 48},
			},
		},
		{
			Name: "xalancbmk", Suite: SuiteSPEC,
			About:   "XSLT: DOM node storm, pointer-intensive with heavy churn",
			MaxLive: 1200, ChurnPerRound: 48, Rounds: 12,
			AllocSize: 256, Chase: true, ChaseLen: 6, ComputeOps: 12, InnerCompute: 4, FPRatio: 0,
			NoiseBranches: 2, SpillEvery: 2, PhaseWindow: 64,
			Patterns: []PatternSpec{
				{patterns.BatchStride, 64},
				{patterns.RandomNoStride, 96},
				{patterns.RandomStride, 48},
			},
		},
		{
			Name: "deepsjeng", Suite: SuiteSPEC,
			About:   "chess search: few big hash tables, branchy integer code",
			MaxLive: 24, ChurnPerRound: 0, Rounds: 36,
			AllocSize: 16384, SweepLen: 6, ComputeOps: 24, InnerCompute: 4, FPRatio: 0,
			NoiseBranches: 4, SpillEvery: 6,
			Patterns: []PatternSpec{
				{patterns.Constant, 96}, // the few big tables live in registers
				{patterns.RandomNoStride, 32},
			},
		},
		{
			Name: "leela", Suite: SuiteSPEC,
			About:   "Go MCTS: tree node churn, pointer-heavy, irregular reuse",
			MaxLive: 300, ChurnPerRound: 16, Rounds: 14,
			AllocSize: 256, Chase: true, ChaseLen: 8, ComputeOps: 14, InnerCompute: 5, FPRatio: 0.2,
			NoiseBranches: 2, SpillEvery: 3,
			Patterns: []PatternSpec{
				{patterns.RepeatNoStride, 48},
				{patterns.RandomStride, 64},
				{patterns.BatchStride, 32},
			},
		},
		{
			Name: "lbm", Suite: SuiteSPEC,
			About:   "lattice Boltzmann: two big grids, streaming FP sweeps",
			MaxLive: 8, ChurnPerRound: 0, Rounds: 40,
			AllocSize: 1048576, SweepLen: 48, ComputeOps: 16, InnerCompute: 10, FPRatio: 0.6,
			NoiseBranches: 0, SpillEvery: 0,
			Patterns: []PatternSpec{
				{patterns.Constant, 48}, // lbm: one buffer repeatedly
				{patterns.Stride, 16},
			},
		},
		{
			Name: "nab", Suite: SuiteSPEC,
			About:   "molecular dynamics: moderate arrays, FP kernels",
			MaxLive: 48, ChurnPerRound: 1, Rounds: 30,
			AllocSize: 2048, SweepLen: 24, ComputeOps: 20, InnerCompute: 6, FPRatio: 0.5,
			NoiseBranches: 1, SpillEvery: 5,
			Patterns: []PatternSpec{
				{patterns.Stride, 48},
				{patterns.BatchStride, 24},
			},
		},

		// --- PARSEC 2.1 (multithreaded). ---
		{
			Name: "blackscholes", Suite: SuitePARSEC, Threads: 4,
			About:   "option pricing: tiny allocation count, pure FP streaming",
			MaxLive: 16, ChurnPerRound: 0, Rounds: 30,
			AllocSize: 65536, SweepLen: 32, ComputeOps: 22, InnerCompute: 10, FPRatio: 0.7,
			NoiseBranches: 0, SpillEvery: 0,
			Patterns: []PatternSpec{
				{patterns.Stride, 32},
			},
		},
		{
			Name: "bodytrack", Suite: SuitePARSEC, Threads: 4,
			About:   "vision: per-frame buffer churn, mixed FP",
			MaxLive: 160, ChurnPerRound: 8, Rounds: 14,
			AllocSize: 512, SweepLen: 12, ComputeOps: 16, InnerCompute: 5, FPRatio: 0.4,
			NoiseBranches: 1, SpillEvery: 4,
			Patterns: []PatternSpec{
				{patterns.BatchStride, 48},
				{patterns.RandomNoStride, 24},
			},
		},
		{
			Name: "fluidanimate", Suite: SuitePARSEC, Threads: 4,
			About:   "SPH fluid: cell lists, neighbor pointer walks",
			MaxLive: 320, ChurnPerRound: 6, Rounds: 12,
			AllocSize: 256, Chase: true, ChaseLen: 5, ComputeOps: 14, InnerCompute: 6, FPRatio: 0.5,
			NoiseBranches: 1, SpillEvery: 4,
			Patterns: []PatternSpec{
				{patterns.Stride, 64},
				{patterns.RepeatStride, 24},
			},
		},
		{
			Name: "freqmine", Suite: SuitePARSEC, Threads: 4,
			About:   "FP-growth: tree construction, integer pointer work",
			MaxLive: 400, ChurnPerRound: 16, Rounds: 12,
			AllocSize: 256, Chase: true, ChaseLen: 6, ComputeOps: 14, InnerCompute: 5, FPRatio: 0,
			NoiseBranches: 2, SpillEvery: 3,
			Patterns: []PatternSpec{
				{patterns.BatchStride, 48},
				{patterns.RandomStride, 32},
			},
		},
		{
			Name: "swaptions", Suite: SuitePARSEC, Threads: 4,
			About:   "HJM Monte Carlo: small working set, FP heavy",
			MaxLive: 64, ChurnPerRound: 4, Rounds: 20,
			AllocSize: 1024, SweepLen: 16, ComputeOps: 20, InnerCompute: 8, FPRatio: 0.6,
			NoiseBranches: 0, SpillEvery: 5,
			Patterns: []PatternSpec{
				{patterns.RepeatStride, 32},
				{patterns.Stride, 24},
			},
		},
		{
			Name: "canneal", Suite: SuitePARSEC, Threads: 4,
			About:   "simulated annealing: enormous element count, random pointer swaps",
			MaxLive: 2000, ChurnPerRound: 40, Rounds: 10,
			AllocSize: 256, Chase: true, ChaseLen: 6, ComputeOps: 8, InnerCompute: 3, FPRatio: 0.1,
			NoiseBranches: 2, SpillEvery: 2, PhaseWindow: 48,
			Patterns: []PatternSpec{
				{patterns.RandomNoStride, 96},
				{patterns.RandomStride, 48},
			},
		},
	}
}

// ByName returns the profile with the given name, or nil.
func ByName(name string) *Profile {
	for _, p := range Catalog() {
		if p.Name == name {
			return p
		}
	}
	return nil
}

// Names returns the catalog's benchmark names in order.
func Names() []string {
	c := Catalog()
	out := make([]string, len(c))
	for i, p := range c {
		out[i] = p.Name
	}
	return out
}
