// Package workload synthesizes the guest programs standing in for the
// paper's SPEC CPU2017 and PARSEC 2.1 C/C++ benchmarks. Each profile
// parameterizes a common program skeleton — allocate a working set, visit
// buffers per a temporal pointer-access schedule (Table II), sweep or
// pointer-chase each buffer, interleave data-dependent branches, compute,
// pointer spills/reloads, and allocation churn — to match the published
// workload features the paper's results depend on: allocation behavior
// (Figure 3), pointer intensity, reload frequency, pattern mix, and branch
// and FP character. Absolute instruction counts are scaled down (see
// DESIGN.md §2); the ratios are preserved.
package workload

import (
	"fmt"
	"math/rand"

	"chex86/internal/asm"
	"chex86/internal/heap"
	"chex86/internal/isa"
	"chex86/internal/mem"
	"chex86/internal/patterns"
)

// chaseNodeBytes is the spacing of chase-list nodes within a buffer.
const chaseNodeBytes = 64

// gcd returns the greatest common divisor of a and b.
func gcd(a, b int64) int64 {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

// PatternSpec weights one Table II pattern kind in a profile's visit
// schedule.
type PatternSpec struct {
	Kind   patterns.Kind
	Visits int // schedule length per round for this pattern
}

// Profile parameterizes one synthetic benchmark.
type Profile struct {
	Name  string
	Suite string // "SPEC CPU2017" or "PARSEC 2.1"
	About string // one-line characterization for reports

	Threads       int
	MaxLive       int    // live buffer table size
	ChurnPerRound int    // buffers freed+reallocated per round
	Rounds        int    // outer iterations
	AllocSize     uint64 // buffer size in bytes (multiple of 8)
	SweepLen      int    // words touched per visit (capped at AllocSize/8)
	Chase         bool   // pointer-chase instead of indexed sweep
	ChaseLen      int    // chase steps per visit
	ComputeOps    int    // register-only ALU ops per visit
	InnerCompute  int    // register-only ops per sweep element / chase hop
	FPRatio       float64
	NoiseBranches int // data-dependent branches per visit
	SpillEvery    int // spill/reload call every N visits (0 = never)
	PhaseWindow   int // working-subset size for random-flavored patterns (0 = 96)
	Patterns      []PatternSpec
}

// SetupInsts estimates the macro-op count of the allocation/initialization
// phase across all threads, for SimPoint-style warmup exclusion.
func (p *Profile) SetupInsts() uint64 {
	perBuffer := uint64(8) // size compute + call + store + loop overhead
	if p.Chase {
		nodes := p.AllocSize / chaseNodeBytes
		perBuffer += nodes * 9
	} else {
		sweep := uint64(p.SweepLen)
		words := p.AllocSize / 8
		if sweep == 0 || sweep > words {
			sweep = words
		}
		perBuffer += sweep * 4
	}
	return uint64(p.MaxLive)*perBuffer*5/4 + 64
}

// TotalAllocs returns the total allocations the profile performs.
func (p *Profile) TotalAllocs() int {
	return p.MaxLive + p.Rounds*p.ChurnPerRound
}

// VisitsPerRound returns the schedule length per round.
func (p *Profile) VisitsPerRound() int {
	n := 0
	for _, ps := range p.Patterns {
		n += ps.Visits
	}
	return n
}

// gen carries program-generation state.
type gen struct {
	b      *asm.Builder
	p      *Profile
	rng    *rand.Rand
	nextGA uint64 // global-data bump pointer
	labelN int
}

func (g *gen) global(name string, size uint64) uint64 {
	addr := g.nextGA
	g.nextGA += (size + 15) &^ 15
	g.b.Global(name, addr, size)
	return addr
}

// pool creates an 8-byte constant-pool slot holding the address of target,
// with a relocation entry so the loader (and CHEx86's alias-table seeding)
// knows it contains a pointer.
func (g *gen) pool(name, target string) uint64 {
	addr := g.global(name, 8)
	g.b.Reloc(addr, target)
	return addr
}

func (g *gen) label(prefix string) string {
	g.labelN++
	return fmt.Sprintf("%s_%d", prefix, g.labelN)
}

// schedule produces the buffer-index visit order for one pattern kind over
// live-table indexes [lo, hi).
func (g *gen) schedule(kind patterns.Kind, lo, hi, visits int) []int {
	n := hi - lo
	if n <= 0 {
		return nil
	}
	idx := func(i int) int { return lo + ((i%n)+n)%n }
	// Random-flavored patterns draw from a phase window rather than the
	// whole live table: programs touch a working subset of their live
	// allocations in any interval (the Figure 3 "allocations in use"
	// observation), which is what makes a 64-entry capability cache
	// effective despite thousands of live allocations.
	window := g.p.PhaseWindow
	if window <= 0 {
		window = 96
	}
	if window > n {
		window = n
	}
	wbase := 0
	if n > window {
		wbase = g.rng.Intn(n - window)
	}
	widx := func(i int) int { return lo + wbase + ((i%window)+window)%window }
	out := make([]int, 0, visits)
	switch kind {
	case patterns.Constant:
		c := idx(g.rng.Intn(n))
		for i := 0; i < visits; i++ {
			out = append(out, c)
		}
	case patterns.Stride:
		start := g.rng.Intn(n)
		for i := 0; i < visits; i++ {
			out = append(out, idx(start+i))
		}
	case patterns.BatchStride:
		const batch = 4
		start := g.rng.Intn(n)
		for i := 0; i < visits; i++ {
			out = append(out, idx(start+i/batch))
		}
	case patterns.BatchNoStride:
		const batch = 4
		cur := widx(g.rng.Intn(window))
		for i := 0; i < visits; i++ {
			if i%batch == 0 {
				cur = widx(g.rng.Intn(window))
			}
			out = append(out, cur)
		}
	case patterns.RepeatStride:
		start := g.rng.Intn(n)
		for i := 0; i < visits; i++ {
			out = append(out, idx(start+i%3))
		}
	case patterns.RepeatNoStride:
		h := []int{widx(g.rng.Intn(window)), widx(g.rng.Intn(window)), widx(g.rng.Intn(window))}
		for i := 0; i < visits; i++ {
			out = append(out, h[i%3])
		}
	case patterns.RandomStride:
		cur := g.rng.Intn(window)
		for i := 0; i < visits; i++ {
			if g.rng.Float64() < 0.7 {
				cur++
			} else {
				cur = g.rng.Intn(window)
			}
			out = append(out, widx(cur))
		}
	default: // RandomNoStride
		for i := 0; i < visits; i++ {
			out = append(out, widx(g.rng.Intn(window)))
		}
	}
	return out
}

// Build assembles the profile into a guest program. scale multiplies the
// round count (use <1 for quick tests, 1 for the paper harness).
func (p *Profile) Build(scale float64) (*asm.Program, error) {
	prof := *p // copy: scaling must not mutate the catalog
	if scale > 0 && scale != 1 {
		prof.Rounds = int(float64(prof.Rounds)*scale + 0.5)
		if prof.Rounds < 1 {
			prof.Rounds = 1
		}
	}
	threads := prof.Threads
	if threads <= 0 {
		threads = 1
	}

	g := &gen{
		b:      asm.NewBuilder(),
		p:      &prof,
		rng:    rand.New(rand.NewSource(int64(len(prof.Name))*7919 + 42)),
		nextGA: mem.GlobalBase,
	}
	b := g.b

	// Shared globals.
	bufTab := g.global("buftab", uint64(prof.MaxLive)*8)
	g.pool("pbuftab", "buftab")
	noiseLen := 256
	noise := g.global("noise", uint64(noiseLen)*8)
	g.pool("pnoise", "noise")
	// Noise words are biased taken ~25% of the time: realistic hard
	// branches are skewed, not uniform coin flips.
	for i := 0; i < noiseLen; i++ {
		v := uint64(0)
		if g.rng.Intn(4) == 0 {
			v = 1
		}
		b.DataU64(noise+uint64(i)*8, v)
	}
	_ = bufTab

	// Per-thread visit schedules as initialized globals.
	scheds := make([][]schedGlobal, threads)
	for t := 0; t < threads; t++ {
		lo := t * prof.MaxLive / threads
		hi := (t + 1) * prof.MaxLive / threads
		for pi, ps := range prof.Patterns {
			name := fmt.Sprintf("visits_t%d_p%d", t, pi)
			sched := g.schedule(ps.Kind, lo, hi, ps.Visits)
			addr := g.global(name, uint64(len(sched))*8)
			g.pool("p"+name, name)
			for i, v := range sched {
				b.DataU64(addr+uint64(i)*8, uint64(v))
			}
			scheds[t] = append(scheds[t], schedGlobal{addr: addr, n: len(sched)})
		}
	}

	for t := 0; t < threads; t++ {
		g.emitThread(t, threads, scheds[t])
	}
	return b.Build()
}

// MustBuild builds or panics (profiles are static).
func (p *Profile) MustBuild(scale float64) *asm.Program {
	prog, err := p.Build(scale)
	if err != nil {
		panic(err)
	}
	return prog
}

// initBuffer emits code initializing the freshly allocated buffer whose
// pointer is in ptr: chase profiles build a circular in-buffer chain of
// node pointers (spilling pointer aliases into the heap); sweep profiles
// zero-fill with integers (clearing any stale aliases from recycled
// memory).
func (g *gen) initBuffer(ptr isa.Reg) {
	b := g.b
	p := g.p
	if g.p.Chase {
		// Chain nodes are 64-B cache lines linked with a 7-line stride
		// (a full cycle, since gcd(7, nodes)=1 for our power-of-two node
		// counts): successive hops land far apart, so the traversal
		// defeats next-line prefetching the way real pointer chasing does.
		nodes := int64(p.AllocSize / chaseNodeBytes)
		if nodes < 4 {
			panic(fmt.Sprintf("workload %s: chase AllocSize %d holds fewer than 4 %d-byte nodes",
				p.Name, p.AllocSize, chaseNodeBytes))
		}
		span := nodes * chaseNodeBytes
		// The link stride (in nodes) must be coprime with the node count
		// so the chain is a single cycle, and smaller than the span so a
		// single conditional subtraction wraps it.
		strideNodes := int64(7)
		if nodes <= 8 {
			strideNodes = 3
		}
		if gcd(strideNodes, nodes) != 1 {
			panic(fmt.Sprintf("workload %s: chain stride %d not coprime with %d nodes", p.Name, strideNodes, nodes))
		}
		chain := g.label("chain")
		nowrap := g.label("nowrap")
		b.MovRI(isa.RCX, 0) // current node offset
		b.Label(chain)
		b.MovRR(isa.RSI, isa.RCX)
		b.AddRI(isa.RSI, strideNodes*chaseNodeBytes)
		b.CmpRI(isa.RSI, span)
		b.Jcc(isa.CondL, nowrap)
		b.SubRI(isa.RSI, span)
		b.Label(nowrap)
		b.Lea(isa.RDX, isa.MemOpIdx(ptr, isa.RSI, 1, 0)) // &next node
		b.StoreIdx(ptr, isa.RCX, 1, 0, isa.RDX)          // cur->next = next
		b.MovRR(isa.RCX, isa.RSI)
		b.CmpRI(isa.RCX, 0)
		b.Jcc(isa.CondNE, chain) // the cycle closes back at offset 0
		return
	}
	// Sweep buffers: initialize exactly the words the visits load, which
	// also clears any stale alias entries left in recycled chunks.
	words := int64(p.AllocSize / 8)
	sweep := int64(p.SweepLen)
	if sweep <= 0 || sweep > words {
		sweep = words
	}
	init := g.label("init")
	b.MovRI(isa.RCX, 0)
	b.Label(init)
	b.StoreIdx(ptr, isa.RCX, 8, 0, isa.RCX)
	b.AddRI(isa.RCX, 1)
	b.CmpRI(isa.RCX, sweep)
	b.Jcc(isa.CondL, init)
}

// schedGlobal locates one pattern's visit schedule in global data.
type schedGlobal struct {
	addr uint64
	n    int
}

// emitThread generates one hart's code. Thread t owns buftab indexes
// [t*L/T, (t+1)*L/T).
func (g *gen) emitThread(t, threads int, scheds []schedGlobal) {
	b := g.b
	p := g.p
	lo := int64(t * p.MaxLive / threads)
	hi := int64((t + 1) * p.MaxLive / threads)

	b.Label(fmt.Sprintf("thread%d", t))

	// Load the constant-pool pointers (PC-relative constant loads in real
	// x86; the relocation entries let the tracker tag them).
	b.Load(isa.R8, isa.RNone, int64(g.poolAddr("pbuftab"))) // R8 = &buftab
	b.Load(isa.R10, isa.RNone, int64(g.poolAddr("pnoise"))) // R10 = &noise

	// --- Allocation phase: populate this thread's buftab slice. ---
	alloc := g.label("alloc")
	b.MovRI(isa.R15, lo)
	b.Label(alloc)
	g.emitAllocSize(isa.R15)
	b.CallAddr(heap.MallocEntry)
	b.StoreIdx(isa.R8, isa.R15, 8, 0, isa.RAX)
	g.initBuffer(isa.RAX)
	b.AddRI(isa.R15, 1)
	b.CmpRI(isa.R15, hi)
	b.Jcc(isa.CondL, alloc)

	// Spill/reload worker: spills the live pointer registers across a call.
	worker := fmt.Sprintf("worker%d", t)
	afterWorker := g.label("afterworker")
	b.Jmp(afterWorker)
	b.Label(worker)
	// Functions repeatedly spill and reload the pointer they work on;
	// those repeated same-PID reloads dominate real reload volume (the
	// paper measures ~2.5% of memory references, highly predictable).
	for i := 0; i < 4; i++ {
		b.Push(isa.RBX)
		b.Push(isa.R11)
		b.AddRI(isa.R11, 3)
		b.Alu(isa.XOR, isa.RegOp(isa.R11), isa.RegOp(isa.RDX))
		b.Pop(isa.R11)
		b.Pop(isa.RBX)
	}
	b.Ret()
	b.Label(afterWorker)

	// --- Main rounds. ---
	b.MovRI(isa.R12, 0) // round counter
	round := g.label("round")
	b.Label(round)

	visitCount := 0
	for pi, sg := range scheds {
		if sg.n == 0 {
			continue
		}
		// R9 = &visits for this pattern.
		b.Load(isa.R9, isa.RNone, int64(g.poolAddr(fmt.Sprintf("pvisits_t%d_p%d", t, pi))))
		loop := g.label("visit")
		b.MovRI(isa.R13, 0)
		b.Label(loop)
		b.LoadIdx(isa.RSI, isa.R9, isa.R13, 8, 0) // idx = visits[r13]
		b.LoadIdx(isa.RBX, isa.R8, isa.RSI, 8, 0) // ptr = buftab[idx] (pointer reload)
		g.emitVisitBody(t, visitCount)
		visitCount++
		b.AddRI(isa.R13, 1)
		b.CmpRI(isa.R13, int64(sg.n))
		b.Jcc(isa.CondL, loop)
	}

	// --- Allocation churn. ---
	if p.ChurnPerRound > 0 {
		churn := g.label("churn")
		b.MovRI(isa.RCX, 0)
		b.MovRI(isa.R14, lo) // churn cursor (restarts every round for locality)
		b.Label(churn)
		b.Push(isa.RCX)
		b.LoadIdx(isa.RDI, isa.R8, isa.R14, 8, 0) // old pointer
		b.CallAddr(heap.FreeEntry)
		g.emitAllocSize(isa.R14)
		b.CallAddr(heap.MallocEntry)
		b.StoreIdx(isa.R8, isa.R14, 8, 0, isa.RAX)
		g.initBuffer(isa.RAX)
		b.AddRI(isa.R14, 1)
		b.CmpRI(isa.R14, hi)
		skip := g.label("churnwrap")
		b.Jcc(isa.CondL, skip)
		b.MovRI(isa.R14, lo)
		b.Label(skip)
		b.Pop(isa.RCX)
		b.AddRI(isa.RCX, 1)
		b.CmpRI(isa.RCX, int64(p.ChurnPerRound))
		b.Jcc(isa.CondL, churn)
	}

	b.AddRI(isa.R12, 1)
	b.CmpRI(isa.R12, int64(p.Rounds))
	b.Jcc(isa.CondL, round)

	// --- Teardown: free the working set. ---
	freeAll := g.label("freeall")
	b.MovRI(isa.R15, lo)
	b.Label(freeAll)
	b.LoadIdx(isa.RDI, isa.R8, isa.R15, 8, 0)
	b.CallAddr(heap.FreeEntry)
	b.AddRI(isa.R15, 1)
	b.CmpRI(isa.R15, hi)
	b.Jcc(isa.CondL, freeAll)
	b.Hlt()
}

// emitVisitBody emits the per-visit work: buffer access (sweep or chase),
// data-dependent branches, register compute, and periodic spill/reload.
func (g *gen) emitVisitBody(t, visitIdx int) {
	b := g.b
	p := g.p

	// Buffer access.
	if p.Chase {
		steps := p.ChaseLen
		if steps <= 0 {
			steps = 8
		}
		chase := g.label("chase")
		b.MovRI(isa.RCX, int64(steps))
		b.Label(chase)
		// Touch the node payload before following the chain: real list
		// traversals read node data, so pointer reloads are a fraction of
		// the loads, not all of them.
		b.Load(isa.RDX, isa.RBX, 8)
		b.AddRR(isa.R11, isa.RDX)
		b.Load(isa.RDX, isa.RBX, 16)
		b.Alu(isa.XOR, isa.RegOp(isa.R11), isa.RegOp(isa.RDX))
		b.Load(isa.RBX, isa.RBX, 0) // follow the in-buffer chain
		g.emitInnerCompute()
		b.SubRI(isa.RCX, 1)
		b.CmpRI(isa.RCX, 0)
		b.Jcc(isa.CondG, chase)
	} else {
		words := int64(p.AllocSize / 8)
		sweep := int64(p.SweepLen)
		if sweep <= 0 || sweep > words {
			sweep = words
		}
		// The sweep roves through the buffer from a per-visit offset so the
		// whole allocation is live working set, not just its first bytes.
		mask := int64(0)
		if room := words - sweep; room > 0 {
			mask = 1
			for mask*2 <= room+1 {
				mask *= 2
			}
			mask--
		}
		loop := g.label("sweep")
		b.MovRR(isa.RSI, isa.R13)
		b.Alu(isa.IMUL, isa.RegOp(isa.RSI), isa.ImmOp(sweep))
		b.Alu(isa.AND, isa.RegOp(isa.RSI), isa.ImmOp(mask))
		b.MovRR(isa.RCX, isa.RSI)
		b.AddRI(isa.RSI, sweep) // rsi = sweep limit
		b.Label(loop)
		b.LoadIdx(isa.RDX, isa.RBX, isa.RCX, 8, 0)
		b.AddRI(isa.RDX, 3)
		g.emitInnerCompute()
		b.StoreIdx(isa.RBX, isa.RCX, 8, 0, isa.RDX)
		b.AddRI(isa.RCX, 1)
		b.CmpRR(isa.RCX, isa.RSI)
		b.Jcc(isa.CondL, loop)
	}

	// Data-dependent branch noise.
	for nb := 0; nb < p.NoiseBranches; nb++ {
		skip := g.label("noise")
		b.MovRR(isa.RDX, isa.R13)
		b.Alu(isa.IMUL, isa.RegOp(isa.RDX), isa.ImmOp(31))
		b.AddRR(isa.RDX, isa.R12)
		b.Alu(isa.AND, isa.RegOp(isa.RDX), isa.ImmOp(255))
		b.LoadIdx(isa.RDX, isa.R10, isa.RDX, 8, 0)
		b.Alu(isa.AND, isa.RegOp(isa.RDX), isa.ImmOp(1))
		b.Jcc(isa.CondE, skip)
		b.AddRI(isa.R11, 1)
		b.Label(skip)
	}

	// Register-only compute.
	nFP := int(float64(p.ComputeOps) * p.FPRatio)
	for ci := 0; ci < p.ComputeOps; ci++ {
		switch {
		case ci < nFP && ci%2 == 0:
			b.Alu(isa.FADD, isa.RegOp(isa.R11), isa.RegOp(isa.RDX))
		case ci < nFP:
			b.Alu(isa.FMUL, isa.RegOp(isa.R11), isa.ImmOp(3))
		case ci%3 == 0:
			b.Alu(isa.XOR, isa.RegOp(isa.R11), isa.RegOp(isa.RDX))
		case ci%3 == 1:
			b.AddRI(isa.R11, 7)
		default:
			b.Alu(isa.SHR, isa.RegOp(isa.R11), isa.ImmOp(1))
		}
	}

	// Periodic pointer spill/reload across a call.
	if p.SpillEvery > 0 && visitIdx%p.SpillEvery == 0 {
		b.Call(fmt.Sprintf("worker%d", t))
	}
}

// emitInnerCompute emits the per-element register work interleaved with
// buffer accesses (real kernels compute on every element; without this,
// check density per instruction is far above the real benchmarks').
func (g *gen) emitInnerCompute() {
	b := g.b
	p := g.p
	nFP := int(float64(p.InnerCompute) * p.FPRatio)
	// Alternate between two accumulators: real kernels carry instruction-
	// level parallelism, so the per-element work must not collapse into a
	// single serial dependence chain.
	accs := [2]isa.Reg{isa.R11, isa.RBP}
	for i := 0; i < p.InnerCompute; i++ {
		acc := accs[i%2]
		switch {
		case i < nFP && i%2 == 0:
			b.Alu(isa.FMUL, isa.RegOp(acc), isa.ImmOp(5))
		case i < nFP:
			b.Alu(isa.FADD, isa.RegOp(acc), isa.RegOp(isa.RDX))
		case i%3 == 0:
			b.Alu(isa.XOR, isa.RegOp(acc), isa.RegOp(isa.RDX))
		case i%3 == 1:
			b.AddRI(acc, 13)
		default:
			b.Alu(isa.SHR, isa.RegOp(acc), isa.ImmOp(1))
		}
	}
}

// emitAllocSize computes this slot's allocation size into %rdi: the base
// size plus a per-slot jitter of up to 7 cache lines. Real allocators see
// varied sizes; without jitter, equal-sized chunks land at pathologically
// aligned addresses and alias in the cache sets.
func (g *gen) emitAllocSize(slot isa.Reg) {
	b := g.b
	b.MovRR(isa.RDI, slot)
	b.Alu(isa.AND, isa.RegOp(isa.RDI), isa.ImmOp(7))
	b.Alu(isa.SHL, isa.RegOp(isa.RDI), isa.ImmOp(6))
	b.AddRI(isa.RDI, int64(g.p.AllocSize))
}

// poolAddr returns the address of a previously created constant-pool slot.
func (g *gen) poolAddr(name string) uint64 {
	for _, gl := range g.globalsSnapshot() {
		if gl.Name == name {
			return gl.Addr
		}
	}
	panic("workload: unknown pool " + name)
}

// globalsSnapshot exposes the builder's registered globals (build-time
// introspection for pool address resolution).
func (g *gen) globalsSnapshot() []asm.Global {
	return g.b.Globals()
}
