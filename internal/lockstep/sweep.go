package lockstep

import (
	"context"
	"encoding/json"
	"fmt"

	"chex86/internal/emu"
	"chex86/internal/faultinject"
	"chex86/internal/lockstep/progen"
)

// SweepSpec is the deterministic description of a lockstep campaign:
// every per-program seed and mutation decision derives from Seed and the
// program's global index via faultinject.DeriveSeed, so a sweep can be
// sharded across the fabric by index range (FirstProgram/Programs) and
// every shard reproduces exactly the programs a sequential run would
// have generated at those indices.
type SweepSpec struct {
	Seed     uint64 `json:"seed"`
	Programs int    `json:"programs"`
	// FirstProgram offsets the global program index (shard base).
	FirstProgram int `json:"firstProgram,omitempty"`

	// Generator shape (0 = default: 40 steps, 4 × 128-byte buffers,
	// 3-deep call tree).
	Steps    int   `json:"steps,omitempty"`
	Bufs     int   `json:"bufs,omitempty"`
	BufBytes int64 `json:"bufBytes,omitempty"`
	Funcs    int   `json:"funcs,omitempty"`

	// MutationPct is the percentage of programs carrying an injected
	// labeled violation (0 = default 40, -1 = none).
	MutationPct int `json:"mutationPct,omitempty"`

	// Harness knobs (0 = defaults: stride 64, 500k macro-ops,
	// crosscheck every 16th safe program; CrosscheckEvery -1 disables).
	Stride          uint64 `json:"stride,omitempty"`
	MaxInsts        uint64 `json:"maxInsts,omitempty"`
	CrosscheckEvery int    `json:"crosscheckEvery,omitempty"`

	// Conditions overrides the run matrix (nil = DefaultConditions).
	Conditions []Condition `json:"conditions,omitempty"`
}

// Normalized returns the spec with defaults filled in.
func (s SweepSpec) Normalized() SweepSpec {
	if s.Programs < 0 {
		s.Programs = 0
	}
	if s.FirstProgram < 0 {
		s.FirstProgram = 0
	}
	if s.Steps <= 0 {
		s.Steps = 40
	}
	if s.MutationPct == 0 {
		s.MutationPct = 40
	}
	if s.MutationPct < 0 {
		s.MutationPct = 0
	}
	if s.MutationPct > 100 {
		s.MutationPct = 100
	}
	if s.Stride == 0 {
		s.Stride = 64
	}
	if s.MaxInsts == 0 {
		s.MaxInsts = 500_000
	}
	if s.CrosscheckEvery == 0 {
		s.CrosscheckEvery = 16
	}
	if s.CrosscheckEvery < 0 {
		s.CrosscheckEvery = 0
	}
	if len(s.Conditions) == 0 {
		s.Conditions = DefaultConditions()
	}
	return s
}

// Validate rejects specs the campaign executor cannot cache
// deterministically.
func (s SweepSpec) Validate() error {
	if s.Programs <= 0 {
		return fmt.Errorf("lockstep: sweep spec needs programs > 0 (open-ended sweeps are CLI-only)")
	}
	if s.Programs > 1_000_000 {
		return fmt.Errorf("lockstep: sweep spec programs %d exceeds 1e6", s.Programs)
	}
	if s.Steps > 10_000 {
		return fmt.Errorf("lockstep: sweep spec steps %d exceeds 1e4", s.Steps)
	}
	return nil
}

// programPlan derives program #idx's generator seed and mutation from the
// sweep seed — pure functions of (Seed, idx).
func (s SweepSpec) programPlan(idx int) (seed uint64, mutation progen.Mutation) {
	seed = faultinject.DeriveSeed(s.Seed, "lockstep", "prog", fmt.Sprintf("%d", idx))
	r := newPlanRNG(faultinject.DeriveSeed(seed, "mut"))
	if int(r.next()%100) < s.MutationPct {
		muts := progen.Mutations()
		mutation = muts[int(r.next()%uint64(len(muts)))]
	}
	return seed, mutation
}

// planRNG is a tiny xorshift64 for plan decisions (mirrors progen's).
type planRNG struct{ s uint64 }

func newPlanRNG(seed uint64) *planRNG {
	if seed == 0 {
		seed = 0x9e3779b97f4a7c15
	}
	return &planRNG{s: seed}
}

func (r *planRNG) next() uint64 {
	r.s ^= r.s << 13
	r.s ^= r.s >> 7
	r.s ^= r.s << 17
	return r.s
}

// ProgramFailure is one failing program with its shrunk reproducer.
type ProgramFailure struct {
	Index    int            `json:"index"`
	Seed     uint64         `json:"seed"`
	Mutation string         `json:"mutation,omitempty"`
	Kind     string         `json:"kind"`
	Cond     string         `json:"cond,omitempty"`
	Detail   string         `json:"detail"`
	Steps    int            `json:"steps"`
	Genome   *progen.Genome `json:"genome,omitempty"`
}

// SweepReport aggregates a sweep. Every field is deterministic for a
// bounded spec (fixed field order, no maps, no wall-clock values), so the
// campaign result cache can content-address it; shrink *duration* goes to
// Metrics, never into the report.
type SweepReport struct {
	Schema     string `json:"schema"`
	Seed       uint64 `json:"seed"`
	First      int    `json:"first,omitempty"`
	Programs   int    `json:"programs"`
	Conditions int    `json:"conditions"`

	Commits     uint64 `json:"commits"`
	ElidedSites int    `json:"elidedSites"`

	Safe     int `json:"safe"`
	Mutated  int `json:"mutated"`
	Detected int `json:"detected"`

	Divergences         int `json:"divergences"`
	InvariantViolations int `json:"invariantViolations"`
	ReportMismatches    int `json:"reportMismatches"`
	FalsePositives      int `json:"falsePositives"`
	LabelMisses         int `json:"labelMisses"`
	Errors              int `json:"errors"`

	Crosschecks              int `json:"crosschecks"`
	CrosscheckFalseNegatives int `json:"crosscheckFalseNegatives"`

	ShrinkAttempts int `json:"shrinkAttempts"`

	Failures []ProgramFailure `json:"failures,omitempty"`
}

// SweepSchema versions the report layout.
const SweepSchema = "lockstep-sweep/v1"

// Failed reports whether the sweep found any harness failure.
func (r *SweepReport) Failed() bool {
	return r.Divergences > 0 || r.InvariantViolations > 0 || r.ReportMismatches > 0 ||
		r.FalsePositives > 0 || r.LabelMisses > 0 || r.Errors > 0 ||
		r.CrosscheckFalseNegatives > 0 || len(r.Failures) > 0
}

// JSON renders the report with stable indentation.
func (r *SweepReport) JSON() []byte {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		panic(fmt.Sprintf("lockstep: report marshal: %v", err))
	}
	return append(data, '\n')
}

// SweepOptions carries the sweep's side-channels: none affect the
// deterministic report content.
type SweepOptions struct {
	// Metrics receives counters (nil = discard).
	Metrics *Metrics
	// Corpus persists shrunk reproducers (nil = in-report only).
	Corpus *Corpus
	// Log receives progress lines (nil = silent).
	Log func(format string, args ...any)
	// Tamper corrupts the differ's view of pipeline commits (the
	// harness's own mutation test; never set in production).
	Tamper func(rec *emu.Rec)
	// ShrinkAttempts bounds minimization per failure (default 200).
	ShrinkAttempts int
	// MaxFailures stops the sweep early once this many failing programs
	// were recorded and shrunk (default 8).
	MaxFailures int
}

// maxReportFailures bounds report size.
const maxReportFailures = 8

// Sweep runs the lockstep harness over spec's program range. With
// Programs > 0 the sweep is bounded and the returned report is a pure
// function of the spec; with Programs == 0 it runs until ctx is done
// (budgeted mode — the CLI's long-campaign loop) and returns a nil error
// on cancellation. A bounded sweep interrupted by ctx returns ctx's error
// so partial reports are never cached.
func Sweep(ctx context.Context, spec SweepSpec, opt SweepOptions) (*SweepReport, error) {
	spec = spec.Normalized()
	m := opt.Metrics
	if m == nil {
		m = &Metrics{}
	}
	logf := opt.Log
	if logf == nil {
		logf = func(string, ...any) {}
	}
	maxFailures := opt.MaxFailures
	if maxFailures <= 0 {
		maxFailures = maxReportFailures
	}
	rep := &SweepReport{
		Schema:     SweepSchema,
		Seed:       spec.Seed,
		First:      spec.FirstProgram,
		Conditions: len(spec.Conditions),
	}
	runOpt := RunOptions{Stride: spec.Stride, MaxInsts: spec.MaxInsts, Tamper: opt.Tamper}
	genOpt := progen.Options{Steps: spec.Steps, Bufs: spec.Bufs, BufBytes: spec.BufBytes, Funcs: spec.Funcs}

	for i := 0; spec.Programs == 0 || i < spec.Programs; i++ {
		if ctx.Err() != nil {
			if spec.Programs == 0 {
				return rep, nil // budget exhausted: the open-ended mode's normal exit
			}
			return rep, ctx.Err()
		}
		idx := spec.FirstProgram + i
		seed, mutation := spec.programPlan(idx)
		gopt := genOpt
		gopt.Mutation = mutation
		g := progen.Generate(seed, gopt)

		pr := RunGenome(g, spec.Conditions, runOpt)
		rep.Programs++
		rep.Commits += pr.Commits
		rep.ElidedSites += pr.Elided
		m.Programs.Add(1)
		if mutation == progen.MutNone {
			rep.Safe++
		} else {
			rep.Mutated++
			m.MutantsInjected.Add(1)
		}

		if pr.Failure == nil && mutation == progen.MutNone &&
			spec.CrosscheckEvery > 0 && i%spec.CrosscheckEvery == 0 {
			prog, err := g.Build()
			if err == nil {
				fns, cerr := crosscheckProgram(ctx, prog, spec.MaxInsts)
				switch {
				case cerr != nil && ctx.Err() != nil:
					// Cancellation mid-crosscheck; handled at loop top.
				case cerr != nil:
					pr.Failure = &Failure{Kind: "error", Detail: "crosscheck: " + cerr.Error()}
				default:
					rep.Crosschecks++
					if fns > 0 {
						rep.CrosscheckFalseNegatives += fns
						pr.Failure = &Failure{Kind: "invariant",
							Detail: fmt.Sprintf("ptrflow crosscheck proved %d tracker false negatives", fns)}
					}
				}
			}
		}

		if pr.Failure == nil {
			if mutation != progen.MutNone {
				rep.Detected++
			}
			continue
		}

		f := pr.Failure
		switch f.Kind {
		case "divergence":
			rep.Divergences++
			m.Divergences.Add(1)
		case "invariant":
			rep.InvariantViolations++
			m.InvariantViolations.Add(1)
		case "report-mismatch":
			rep.ReportMismatches++
		case "false-positive":
			rep.FalsePositives++
		case "label":
			rep.LabelMisses++
			m.MutantsMissed.Add(1)
		default:
			rep.Errors++
		}
		logf("program %d (seed=%#x mut=%q) FAILED: %s", idx, seed, mutation, f)

		// Minimize: a candidate reproduces when the harness fails it for
		// the same reason class.
		start := m.now()
		shrunk, attempts := Shrink(g, func(cand *progen.Genome) bool {
			cr := RunGenome(cand, spec.Conditions, runOpt)
			return cr.Failure != nil && cr.Failure.Kind == f.Kind
		}, opt.ShrinkAttempts)
		if end := m.now(); end > start {
			m.ShrinkNS.Add(end - start)
		}
		m.ShrinkRuns.Add(int64(attempts))
		rep.ShrinkAttempts += attempts
		logf("  shrunk %d -> %d steps in %d attempts", len(g.Steps), len(shrunk.Steps), attempts)

		pf := ProgramFailure{
			Index:    idx,
			Seed:     seed,
			Mutation: string(mutation),
			Kind:     f.Kind,
			Cond:     f.Cond,
			Detail:   f.Detail,
			Steps:    len(shrunk.Steps),
			Genome:   shrunk,
		}
		if opt.Corpus != nil {
			if path, err := opt.Corpus.PutRepro(shrunk); err == nil {
				logf("  repro: %s", path)
			} else {
				logf("  repro persist failed: %v", err)
			}
		}
		rep.Failures = append(rep.Failures, pf)
		if len(rep.Failures) >= maxFailures {
			logf("stopping after %d failures", len(rep.Failures))
			break
		}
	}
	return rep, nil
}
