package lockstep

import (
	"bytes"
	"context"
	"testing"

	"chex86/internal/emu"
	"chex86/internal/isa"
	"chex86/internal/lockstep/progen"
)

// fastConditions is a reduced matrix for unit tests (the full
// fourteen-cell matrix runs in the sweep tests and CI gate).
func fastConditions() []Condition {
	full := DefaultConditions()
	out := make([]Condition, 0, 4)
	for _, c := range full {
		if c.NoUopCache && c.Variant.UsesTracker() && !c.Elide {
			continue // trim a few cells; keep insecure+nouop and elide+nouop
		}
		out = append(out, c)
	}
	return out
}

// TestSafeProgramsLockstep: safe genomes must pass the whole matrix —
// no divergence, no invariant hit, no violations anywhere.
func TestSafeProgramsLockstep(t *testing.T) {
	for seed := uint64(0); seed < 8; seed++ {
		g := progen.Generate(seed, progen.Options{})
		pr := RunGenome(g, DefaultConditions(), RunOptions{Stride: 16})
		if pr.Failure != nil {
			t.Fatalf("seed %d: %v", seed, pr.Failure)
		}
		if pr.Commits == 0 {
			t.Fatalf("seed %d: no commits diffed", seed)
		}
	}
}

// TestMutationsDetected: every injected violation class must be caught
// with the labeled kind under every protected condition, identically
// across elision and μop-cache toggles.
func TestMutationsDetected(t *testing.T) {
	for _, mut := range progen.Mutations() {
		mut := mut
		t.Run(string(mut), func(t *testing.T) {
			for seed := uint64(0); seed < 5; seed++ {
				g := progen.Generate(seed, progen.Options{Mutation: mut})
				pr := RunGenome(g, DefaultConditions(), RunOptions{Stride: 32})
				if pr.Failure != nil {
					t.Fatalf("seed %d: %v", seed, pr.Failure)
				}
			}
		})
	}
}

// TestTamperedPipelineCaught is the harness's own mutation test: corrupt
// the differ's view of single commits (simulating a pipeline that
// mis-executes) and the divergence must be caught and shrink to a tiny
// repro.
func TestTamperedPipelineCaught(t *testing.T) {
	g := progen.Generate(3, progen.Options{})
	// "Broken pipeline": every committed store of the 0x5A byte pattern
	// writes the wrong value.
	tamper := func(rec *emu.Rec) {
		if rec.StoreVal == 0x5A {
			rec.StoreVal ^= 1
		}
	}
	// Ensure the pattern occurs at all for this seed; if not, pick one
	// that has a byte store.
	var hit bool
	seed := uint64(3)
	for s := uint64(0); s < 50; s++ {
		cand := progen.Generate(s, progen.Options{})
		prog, err := cand.Build()
		if err != nil {
			t.Fatal(err)
		}
		for i := range prog.Insts {
			if prog.Insts[i].Op == isa.MOVB && prog.Insts[i].Dst.Kind == isa.OpMem {
				hit = true
				break
			}
		}
		if hit {
			seed, g = s, cand
			break
		}
	}
	if !hit {
		t.Fatal("no seed with a byte store found")
	}

	opt := RunOptions{Stride: 16, Tamper: tamper}
	pr := RunGenome(g, fastConditions(), opt)
	if pr.Failure == nil {
		t.Fatalf("seed %d: tampered commits not caught", seed)
	}
	if pr.Failure.Kind != "divergence" {
		t.Fatalf("tamper classified as %q, want divergence: %v", pr.Failure.Kind, pr.Failure)
	}

	shrunk, attempts := Shrink(g, func(cand *progen.Genome) bool {
		cr := RunGenome(cand, fastConditions(), opt)
		return cr.Failure != nil && cr.Failure.Kind == "divergence"
	}, 0)
	if cr := RunGenome(shrunk, fastConditions(), opt); cr.Failure == nil {
		t.Fatal("shrunk genome no longer reproduces")
	}
	if len(shrunk.Steps) > 12 {
		t.Fatalf("shrunk repro has %d steps (> 12) after %d attempts", len(shrunk.Steps), attempts)
	}
	t.Logf("shrunk %d -> %d steps in %d attempts", len(g.Steps), len(shrunk.Steps), attempts)
}

// TestSnapshotDiffCatchesRegisterCorruption exercises the stride
// snapshot path directly: two machines that executed different programs
// must differ.
func TestSnapshotDiff(t *testing.T) {
	g := progen.Generate(1, progen.Options{})
	prog, err := g.Build()
	if err != nil {
		t.Fatal(err)
	}
	a := emu.New(prog, emu.Options{Harts: 1})
	b := emu.New(prog, emu.Options{Harts: 1})
	for i := 0; i < 10; i++ {
		step(t, a)
		step(t, b)
	}
	if d := a.Snapshot().Diff(b.Snapshot()); len(d) != 0 {
		t.Fatalf("identical machines diff: %v", d)
	}
	step(t, a) // a is now one instruction ahead
	if d := a.Snapshot().Diff(b.Snapshot()); len(d) == 0 {
		t.Fatal("diverged machines must diff")
	}
}

func step(t *testing.T, m *emu.Machine) {
	t.Helper()
	rec, err := m.Step()
	if err != nil {
		t.Fatal(err)
	}
	if rec != nil {
		m.Recycle(rec)
	}
}

// TestCorpusRoundTrip: put/load is content-addressed and stable.
func TestCorpusRoundTrip(t *testing.T) {
	c, err := OpenCorpus(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	g := progen.Generate(9, progen.Options{Mutation: progen.MutOOB})
	p1, err := c.PutRepro(g)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := c.PutRepro(g)
	if err != nil {
		t.Fatal(err)
	}
	if p1 != p2 {
		t.Fatalf("content addressing broken: %s != %s", p1, p2)
	}
	if _, err := c.PutSeed(progen.Generate(10, progen.Options{})); err != nil {
		t.Fatal(err)
	}
	repros, err := c.Repros()
	if err != nil {
		t.Fatal(err)
	}
	if len(repros) != 1 || !bytes.Equal(repros[0].CanonicalJSON(), g.CanonicalJSON()) {
		t.Fatalf("repro round trip: got %d entries", len(repros))
	}
	seeds, err := c.Seeds()
	if err != nil {
		t.Fatal(err)
	}
	if len(seeds) != 1 {
		t.Fatalf("seed round trip: got %d entries", len(seeds))
	}
}

// TestSweepDeterministic: a bounded sweep is a pure function of its
// spec — two runs render byte-identical reports.
func TestSweepDeterministic(t *testing.T) {
	spec := SweepSpec{Seed: 42, Programs: 6, CrosscheckEvery: 3, Conditions: fastConditions()}
	a, err := Sweep(context.Background(), spec, SweepOptions{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Sweep(context.Background(), spec, SweepOptions{Metrics: &Metrics{}})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.JSON(), b.JSON()) {
		t.Fatalf("sweep reports differ:\n%s\nvs\n%s", a.JSON(), b.JSON())
	}
	if a.Failed() {
		t.Fatalf("clean sweep reported failure:\n%s", a.JSON())
	}
	if a.Programs != 6 || a.Safe+a.Mutated != 6 || a.Detected != a.Mutated {
		t.Fatalf("sweep accounting off:\n%s", a.JSON())
	}
	if a.Crosschecks == 0 {
		t.Fatalf("expected at least one ptrflow crosscheck:\n%s", a.JSON())
	}
}

// TestSweepShardEquivalence: splitting a sweep by FirstProgram must
// reproduce exactly the same per-program outcomes as the sequential run
// (the fabric sharding contract).
func TestSweepShardEquivalence(t *testing.T) {
	conds := fastConditions()
	whole, err := Sweep(context.Background(), SweepSpec{Seed: 7, Programs: 4, CrosscheckEvery: -1, Conditions: conds}, SweepOptions{})
	if err != nil {
		t.Fatal(err)
	}
	var commits uint64
	var programs int
	for _, shard := range []SweepSpec{
		{Seed: 7, Programs: 2, CrosscheckEvery: -1, Conditions: conds},
		{Seed: 7, Programs: 2, FirstProgram: 2, CrosscheckEvery: -1, Conditions: conds},
	} {
		rep, err := Sweep(context.Background(), shard, SweepOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if rep.Failed() {
			t.Fatalf("shard failed:\n%s", rep.JSON())
		}
		commits += rep.Commits
		programs += rep.Programs
	}
	if commits != whole.Commits || programs != whole.Programs {
		t.Fatalf("shards(commits=%d programs=%d) != whole(commits=%d programs=%d)",
			commits, programs, whole.Commits, whole.Programs)
	}
}

// TestSweepContext: an open-ended sweep (Programs == 0) exits cleanly
// when its context is done (nil error — the CLI's budget mode), while an
// interrupted bounded sweep propagates the context error so partial
// reports are never cached.
func TestSweepContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	rep, err := Sweep(ctx, SweepSpec{Seed: 1}, SweepOptions{})
	if err != nil {
		t.Fatalf("open-ended sweep must exit nil on cancellation: %v", err)
	}
	if rep.Programs != 0 {
		t.Fatalf("cancelled before start but ran %d programs", rep.Programs)
	}
	if _, err := Sweep(ctx, SweepSpec{Seed: 1, Programs: 3}, SweepOptions{}); err == nil {
		t.Fatal("interrupted bounded sweep must return the context error")
	}
}

// TestMetricsRender: counter exposition is stable and complete.
func TestMetricsRender(t *testing.T) {
	m := &Metrics{}
	m.Programs.Add(3)
	m.Divergences.Add(1)
	m.SetClock(func() int64 { return 5_000_000 })
	if m.now() != 5_000_000 {
		t.Fatal("injected clock not used")
	}
	out := m.Snapshot().Render()
	for _, want := range []string{
		"lockstep_programs_total 3\n",
		"lockstep_divergences_total 1\n",
		"lockstep_shrink_seconds_total 0.000000\n",
	} {
		if !bytes.Contains([]byte(out), []byte(want)) {
			t.Fatalf("metrics render missing %q:\n%s", want, out)
		}
	}
}
