// Package lockstep is the observational-correctness harness: it runs
// generated guest programs (internal/lockstep/progen) through the full
// pipeline simulator and a standalone reference emulator side by side,
// diffing the committed architectural stream record by record and full
// machine snapshots at configurable commit strides, while continuously
// auditing the capability-table invariants the CHEx86 design promises.
// Every program runs under a matrix of conditions — protection variant ×
// proof-carrying elision on/off × μop-cache on/off, plus a guard-hoisting
// cell per protected variant — and the violation reports across a
// variant's conditions must be byte-identical (elision, guard hoisting
// and the translation cache must never change observable behavior).
// Failing programs are minimized by deterministic step removal (shrink.go)
// and persisted to a content-addressed corpus (corpus.go).
package lockstep

import (
	"fmt"
	"strings"

	"chex86/internal/asm"
	"chex86/internal/core"
	"chex86/internal/decode"
	"chex86/internal/elide"
	"chex86/internal/emu"
	"chex86/internal/lockstep/progen"
	"chex86/internal/pipeline"
)

// Condition is one cell of the run matrix.
type Condition struct {
	Variant    decode.Variant `json:"variant"`
	Elide      bool           `json:"elide,omitempty"`
	NoUopCache bool           `json:"noUopCache,omitempty"`
	// Hoist additionally installs the verified hoisted-guard map
	// (DESIGN.md §16) on top of elision; with the guard μop live, guard
	// hoisting may change timing but never the committed values or the
	// violation report.
	Hoist bool `json:"hoist,omitempty"`
	// NoSuperblocks disables superblock replay (DESIGN.md §17); replay
	// must never change a committed byte, so cells differing only in
	// this knob must agree exactly.
	NoSuperblocks bool `json:"noSuperblocks,omitempty"`
}

// Name renders a short stable identifier ("prediction+elide-uop").
func (c Condition) Name() string {
	var b strings.Builder
	switch c.Variant {
	case decode.VariantInsecure:
		b.WriteString("insecure")
	case decode.VariantMicrocodeAlwaysOn:
		b.WriteString("always-on")
	case decode.VariantMicrocodePrediction:
		b.WriteString("prediction")
	default:
		fmt.Fprintf(&b, "variant%d", c.Variant)
	}
	if c.Elide {
		b.WriteString("+elide")
	}
	if c.Hoist {
		b.WriteString("+hoist")
	}
	if c.NoUopCache {
		b.WriteString("-uop")
	}
	if c.NoSuperblocks {
		b.WriteString("-sb")
	}
	return b.String()
}

// DefaultConditions is the acceptance matrix: insecure / always-on /
// prediction × elision on/off × μop-cache on/off (elision is meaningless
// without a tracker, so the insecure variant only toggles the cache),
// plus, per protected variant, one guard-hoisting cell (elide+hoist) and
// one superblock-replay-off cell over the full elide+hoist stack — the
// baked-facts path against live map probes — fourteen conditions per
// program.
func DefaultConditions() []Condition {
	out := []Condition{
		{Variant: decode.VariantInsecure},
		{Variant: decode.VariantInsecure, NoUopCache: true},
	}
	for _, v := range []decode.Variant{decode.VariantMicrocodeAlwaysOn, decode.VariantMicrocodePrediction} {
		for _, el := range []bool{false, true} {
			for _, nuc := range []bool{false, true} {
				out = append(out, Condition{Variant: v, Elide: el, NoUopCache: nuc})
			}
		}
		out = append(out, Condition{Variant: v, Elide: true, Hoist: true})
		out = append(out, Condition{Variant: v, Elide: true, Hoist: true, NoSuperblocks: true})
	}
	return out
}

// RunOptions configures one lockstep execution.
type RunOptions struct {
	// Stride is the commit interval for full-snapshot diffing and
	// invariant auditing (default 64; every commit is still record-diffed).
	Stride uint64
	// MaxInsts bounds each run (default 500k macro-ops, matching the
	// security fuzz suite).
	MaxInsts uint64
	// Tamper, when set, corrupts the harness's view of each pipeline
	// commit before diffing. It exists for the harness's own mutation
	// test — proving a broken pipeline is caught and shrunk — and is
	// never set in production sweeps.
	Tamper func(rec *emu.Rec)
}

func (o RunOptions) withDefaults() RunOptions {
	if o.Stride == 0 {
		o.Stride = 64
	}
	if o.MaxInsts == 0 {
		o.MaxInsts = 500_000
	}
	return o
}

// Divergence describes the first observed disagreement between the
// pipeline and the reference emulator.
type Divergence struct {
	Cond   string `json:"cond"`
	Seq    uint64 `json:"seq"`
	Detail string `json:"detail"`
	// Tail holds the last agreed-on committed records before the
	// divergence — the common prefix of both traces.
	Tail []string `json:"tail,omitempty"`
}

func (d *Divergence) String() string {
	return fmt.Sprintf("[%s] seq=%d: %s", d.Cond, d.Seq, d.Detail)
}

// VioSummary is the observable part of a capability violation — the
// fields that must be identical across elision and μop-cache toggles.
type VioSummary struct {
	Kind string `json:"kind"`
	PID  int64  `json:"pid"`
	EA   uint64 `json:"ea"`
	RIP  uint64 `json:"rip"`
}

func vioSummaries(vs []*core.Violation) []VioSummary {
	out := make([]VioSummary, len(vs))
	for i, v := range vs {
		out[i] = VioSummary{Kind: v.Kind.String(), PID: int64(v.PID), EA: v.EA, RIP: v.RIP}
	}
	return out
}

// renderVios flattens a violation list into one comparable string.
func renderVios(vs []VioSummary) string {
	if len(vs) == 0 {
		return "none"
	}
	parts := make([]string, len(vs))
	for i, v := range vs {
		parts[i] = fmt.Sprintf("%s(pid=%d ea=%#x rip=%#x)", v.Kind, v.PID, v.EA, v.RIP)
	}
	return strings.Join(parts, ";")
}

// CondResult is the outcome of one program under one condition.
type CondResult struct {
	Cond       Condition    `json:"cond"`
	Name       string       `json:"name"`
	Commits    uint64       `json:"commits"`
	Elided     int          `json:"elided,omitempty"`
	Violations []VioSummary `json:"violations,omitempty"`
	Divergence *Divergence  `json:"divergence,omitempty"`
	Invariants []string     `json:"invariants,omitempty"`
	Err        string       `json:"err,omitempty"`
}

// tailRing keeps the last n formatted records for divergence context.
type tailRing struct {
	buf  []string
	next int
	full bool
}

func newTailRing(n int) *tailRing { return &tailRing{buf: make([]string, n)} }

func (t *tailRing) push(s string) {
	t.buf[t.next] = s
	t.next++
	if t.next == len(t.buf) {
		t.next = 0
		t.full = true
	}
}

func (t *tailRing) list() []string {
	if !t.full {
		return append([]string(nil), t.buf[:t.next]...)
	}
	out := make([]string, 0, len(t.buf))
	out = append(out, t.buf[t.next:]...)
	out = append(out, t.buf[:t.next]...)
	return out
}

// fmtRec renders one committed record for trace tails and diff reports.
func fmtRec(r *emu.Rec) string {
	var b strings.Builder
	fmt.Fprintf(&b, "#%d c%d %v@%#x", r.Seq, r.Core, r.Inst.Op, r.Inst.Addr)
	if r.HasEA {
		fmt.Fprintf(&b, " ea=%#x", r.EA)
	}
	if r.HasVal {
		fmt.Fprintf(&b, " val=%#x", r.Val)
	}
	if r.StoreVal != 0 {
		fmt.Fprintf(&b, " st=%#x", r.StoreVal)
	}
	if r.Taken {
		fmt.Fprintf(&b, " taken->%#x", r.Target)
	}
	if r.Event != emu.EvNone {
		fmt.Fprintf(&b, " ev=%v pid=%d base=%#x size=%d", r.Event, r.AllocPID, r.AllocBase, r.AllocSize)
	}
	return b.String()
}

// diffRec compares the pipeline's committed record against the
// reference's, returning a description of the first mismatching field or
// "" when identical.
func diffRec(p, r *emu.Rec) string {
	mismatch := func(field string, pv, rv any) string {
		return fmt.Sprintf("%s: pipeline %v != reference %v (pipeline rec: %s | reference rec: %s)",
			field, pv, rv, fmtRec(p), fmtRec(r))
	}
	switch {
	case p.Seq != r.Seq:
		return mismatch("seq", p.Seq, r.Seq)
	case p.Core != r.Core:
		return mismatch("core", p.Core, r.Core)
	case p.Inst.Addr != r.Inst.Addr:
		return mismatch("inst.addr", fmt.Sprintf("%#x", p.Inst.Addr), fmt.Sprintf("%#x", r.Inst.Addr))
	case p.Inst.Op != r.Inst.Op:
		return mismatch("inst.op", p.Inst.Op, r.Inst.Op)
	case p.HasEA != r.HasEA:
		return mismatch("hasEA", p.HasEA, r.HasEA)
	case p.EA != r.EA:
		return mismatch("ea", fmt.Sprintf("%#x", p.EA), fmt.Sprintf("%#x", r.EA))
	case p.HasVal != r.HasVal:
		return mismatch("hasVal", p.HasVal, r.HasVal)
	case p.Val != r.Val:
		return mismatch("val", fmt.Sprintf("%#x", p.Val), fmt.Sprintf("%#x", r.Val))
	case p.StoreVal != r.StoreVal:
		return mismatch("storeVal", fmt.Sprintf("%#x", p.StoreVal), fmt.Sprintf("%#x", r.StoreVal))
	case p.Taken != r.Taken:
		return mismatch("taken", p.Taken, r.Taken)
	case p.Target != r.Target:
		return mismatch("target", fmt.Sprintf("%#x", p.Target), fmt.Sprintf("%#x", r.Target))
	case p.Event != r.Event:
		return mismatch("event", p.Event, r.Event)
	case p.AllocPID != r.AllocPID:
		return mismatch("allocPID", p.AllocPID, r.AllocPID)
	case p.AllocBase != r.AllocBase:
		return mismatch("allocBase", fmt.Sprintf("%#x", p.AllocBase), fmt.Sprintf("%#x", r.AllocBase))
	case p.AllocSize != r.AllocSize:
		return mismatch("allocSize", p.AllocSize, r.AllocSize)
	}
	return ""
}

// runConditionProg executes a prebuilt program under one condition with
// a reference emulator in lockstep, returning the condition result. A
// divergence stops diffing (the first one is the report) but the run
// completes so violation reports stay comparable.
func runConditionProg(prog *asm.Program, cond Condition, opt RunOptions) *CondResult {
	opt = opt.withDefaults()
	res := &CondResult{Cond: cond, Name: cond.Name()}

	cfg := pipeline.DefaultConfig()
	cfg.Variant = cond.Variant
	cfg.MaxInsts = opt.MaxInsts
	cfg.NoUopCache = cond.NoUopCache
	cfg.NoSuperblocks = cond.NoSuperblocks
	var erep *elide.Report
	if cond.Elide {
		rep, err := elide.ForProgram(prog, elide.Options{Harts: 1})
		if err != nil {
			res.Err = fmt.Sprintf("elide: %v", err)
			return res
		}
		erep = rep
		cfg.ElideChecks = true
		cfg.ElisionDigest = rep.Digest
		if cond.Hoist {
			cfg.HoistGuards = true
			cfg.GuardDigest = rep.Guards.Digest
		}
	}
	sim, err := pipeline.NewSim(prog, cfg, 1)
	if err != nil {
		res.Err = fmt.Sprintf("sim: %v", err)
		return res
	}
	if erep != nil {
		sim.SetElisionMap(erep.Map)
		res.Elided = erep.Stats.Elided
		if cond.Hoist {
			sim.SetGuardMap(erep.Guards.Map)
		}
	}
	ref := emu.New(prog, emu.Options{Harts: 1, MaxInsts: opt.MaxInsts})

	tail := newTailRing(8)
	diverge := func(seq uint64, detail string) {
		if res.Divergence == nil {
			res.Divergence = &Divergence{Cond: res.Name, Seq: seq, Detail: detail, Tail: tail.list()}
		}
	}
	sim.TraceCommit = func(rec *emu.Rec) {
		if res.Divergence != nil {
			return
		}
		view := *rec
		if opt.Tamper != nil {
			opt.Tamper(&view)
		}
		refRec, refErr := ref.Step()
		if refErr != nil {
			diverge(view.Seq, fmt.Sprintf("reference faulted while pipeline committed %s: %v", fmtRec(&view), refErr))
			return
		}
		if refRec == nil {
			diverge(view.Seq, "reference exhausted while pipeline committed "+fmtRec(&view))
			return
		}
		defer ref.Recycle(refRec)
		if d := diffRec(&view, refRec); d != "" {
			diverge(view.Seq, d)
			return
		}
		tail.push(fmtRec(refRec))
		res.Commits++
		if res.Commits%opt.Stride == 0 {
			if ds := sim.M.Snapshot().Diff(ref.Snapshot()); len(ds) > 0 {
				diverge(view.Seq, "snapshot: "+strings.Join(ds, "; "))
				return
			}
			res.Invariants = append(res.Invariants, auditInvariants(sim)...)
		}
	}

	_, runErr := sim.Run()
	switch e := runErr.(type) {
	case nil:
		// The pipeline drained cleanly; the reference must be exhausted
		// (or at its identical budget) too.
		if res.Divergence == nil {
			refRec, refErr := ref.Step()
			if refErr != nil {
				diverge(res.Commits, fmt.Sprintf("reference faulted after pipeline completed: %v", refErr))
			} else if refRec != nil {
				diverge(res.Commits, "pipeline exhausted while reference would commit "+fmtRec(refRec))
				ref.Recycle(refRec)
			}
		}
	case *emu.Fault:
		// A functional fault must reproduce structurally on the reference.
		if res.Divergence == nil {
			refRec, refErr := ref.Step()
			if refRec != nil {
				ref.Recycle(refRec)
			}
			rf, ok := refErr.(*emu.Fault)
			switch {
			case !ok && refErr != nil:
				diverge(res.Commits, fmt.Sprintf("pipeline faulted (%v) but reference errored differently: %v", e, refErr))
			case !ok:
				diverge(res.Commits, fmt.Sprintf("pipeline faulted (%v) but reference did not", e))
			case rf.Kind != e.Kind || rf.Addr != e.Addr || rf.RIP != e.RIP:
				diverge(res.Commits, fmt.Sprintf("fault mismatch: pipeline kind=%v addr=%#x rip=%#x != reference kind=%v addr=%#x rip=%#x",
					e.Kind, e.Addr, e.RIP, rf.Kind, rf.Addr, rf.RIP))
			}
		}
	default:
		res.Err = fmt.Sprintf("run: %v", runErr)
	}
	if res.Divergence == nil && res.Err == "" {
		if ds := sim.M.Snapshot().Diff(ref.Snapshot()); len(ds) > 0 {
			diverge(res.Commits, "final snapshot: "+strings.Join(ds, "; "))
		}
		res.Invariants = append(res.Invariants, auditInvariants(sim)...)
	}
	res.Violations = vioSummaries(sim.Violations)
	return res
}

// Failure classifies why a program failed the harness.
type Failure struct {
	// Kind is one of "build", "error", "divergence", "invariant",
	// "report-mismatch", "false-positive", "label".
	Kind   string `json:"kind"`
	Cond   string `json:"cond,omitempty"`
	Detail string `json:"detail"`
}

func (f *Failure) String() string {
	if f.Cond != "" {
		return fmt.Sprintf("%s [%s]: %s", f.Kind, f.Cond, f.Detail)
	}
	return f.Kind + ": " + f.Detail
}

// ProgramResult is the matrix outcome for one genome.
type ProgramResult struct {
	Genome  *progen.Genome `json:"genome,omitempty"`
	Conds   []*CondResult  `json:"conds,omitempty"`
	Failure *Failure       `json:"failure,omitempty"`
	Commits uint64         `json:"commits"`
	Elided  int            `json:"elided"`
}

// RunGenome builds the genome once and runs it under every condition,
// then classifies the aggregate outcome:
//
//   - no run may diverge from the reference, fault the harness, or trip
//     an invariant audit;
//   - within a variant, every condition (elision ×, μop cache ×) must
//     produce an identical violation report;
//   - the insecure baseline must observe zero violations;
//   - a safe genome must be violation-free everywhere (no false
//     positives), and a mutated genome's labeled class must be the first
//     violation under every protected variant.
func RunGenome(g *progen.Genome, conds []Condition, opt RunOptions) *ProgramResult {
	if len(conds) == 0 {
		conds = DefaultConditions()
	}
	pr := &ProgramResult{Genome: g}
	prog, err := g.Build()
	if err != nil {
		pr.Failure = &Failure{Kind: "build", Detail: err.Error()}
		return pr
	}
	for _, c := range conds {
		rc := runConditionProg(prog, c, opt)
		pr.Conds = append(pr.Conds, rc)
		pr.Commits += rc.Commits
		pr.Elided += rc.Elided
	}
	pr.Failure = classify(g, pr.Conds)
	return pr
}

func classify(g *progen.Genome, conds []*CondResult) *Failure {
	for _, rc := range conds {
		if rc.Err != "" {
			return &Failure{Kind: "error", Cond: rc.Name, Detail: rc.Err}
		}
		if rc.Divergence != nil {
			return &Failure{Kind: "divergence", Cond: rc.Name, Detail: rc.Divergence.Detail}
		}
		if len(rc.Invariants) > 0 {
			return &Failure{Kind: "invariant", Cond: rc.Name, Detail: strings.Join(rc.Invariants, "; ")}
		}
	}
	// Per-variant observational identity: elision and the μop cache must
	// never change the violation report.
	type base struct {
		name string
		vios string
	}
	byVariant := make(map[decode.Variant]base)
	for _, rc := range conds {
		r := renderVios(rc.Violations)
		if b, ok := byVariant[rc.Cond.Variant]; ok {
			if b.vios != r {
				return &Failure{Kind: "report-mismatch", Cond: rc.Name,
					Detail: fmt.Sprintf("violations differ within variant: %s=[%s] vs %s=[%s]", b.name, b.vios, rc.Name, r)}
			}
		} else {
			byVariant[rc.Cond.Variant] = base{name: rc.Name, vios: r}
		}
	}
	for _, rc := range conds {
		switch {
		case rc.Cond.Variant == decode.VariantInsecure && len(rc.Violations) > 0:
			return &Failure{Kind: "error", Cond: rc.Name,
				Detail: "insecure baseline reported violations: " + renderVios(rc.Violations)}
		case rc.Cond.Variant != decode.VariantInsecure && g.Mutation == progen.MutNone && len(rc.Violations) > 0:
			return &Failure{Kind: "false-positive", Cond: rc.Name,
				Detail: "safe program flagged: " + renderVios(rc.Violations)}
		case rc.Cond.Variant != decode.VariantInsecure && g.Mutation != progen.MutNone:
			want := g.Mutation.Expect().String()
			if len(rc.Violations) == 0 {
				return &Failure{Kind: "label", Cond: rc.Name,
					Detail: fmt.Sprintf("injected %q mutation escaped detection", g.Mutation)}
			}
			if rc.Violations[0].Kind != want {
				return &Failure{Kind: "label", Cond: rc.Name,
					Detail: fmt.Sprintf("injected %q flagged as %s, want %s", g.Mutation, rc.Violations[0].Kind, want)}
			}
		}
	}
	return nil
}
