package lockstep

import (
	"testing"

	"chex86/internal/decode"
	"chex86/internal/lockstep/progen"
)

// FuzzLockstep is the Go-native fuzzing entry: the engine explores
// (seed, mutation, steps) space and every derived genome must pass the
// harness — reference lockstep agreement, invariant audits, per-variant
// report identity, and ground-truth label detection. The condition set is
// trimmed for throughput (insecure + prediction with elision and μop
// cache toggled); CI runs this with -fuzz=FuzzLockstep -fuzztime 10s on
// top of the seeded corpus below.
func FuzzLockstep(f *testing.F) {
	f.Add(uint64(1), uint8(0), uint16(40))
	f.Add(uint64(2), uint8(1), uint16(24))
	f.Add(uint64(3), uint8(2), uint16(16))
	f.Add(uint64(4), uint8(3), uint16(32))
	f.Add(uint64(5), uint8(4), uint16(8))
	conds := []Condition{
		{Variant: decode.VariantInsecure},
		{Variant: decode.VariantMicrocodePrediction},
		{Variant: decode.VariantMicrocodePrediction, Elide: true},
		{Variant: decode.VariantMicrocodePrediction, NoUopCache: true},
	}
	muts := append([]progen.Mutation{progen.MutNone}, progen.Mutations()...)
	f.Fuzz(func(t *testing.T, seed uint64, mutSel uint8, steps uint16) {
		mut := muts[int(mutSel)%len(muts)]
		g := progen.Generate(seed, progen.Options{
			Steps:    int(steps%512) + 1,
			Mutation: mut,
		})
		pr := RunGenome(g, conds, RunOptions{Stride: 32, MaxInsts: 200_000})
		if pr.Failure != nil {
			t.Fatalf("seed=%#x mut=%q steps=%d: %v\ngenome: %s",
				seed, mut, steps, pr.Failure, g.CanonicalJSON())
		}
	})
}
