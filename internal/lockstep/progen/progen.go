// Package progen is the seeded, deterministic guest-program generator
// behind the lockstep differential-fuzzing harness (internal/lockstep)
// and the security fuzz suite (internal/security). It generalizes the
// program-builder that used to live inline in the security fuzz test:
// programs allocate a handful of heap buffers and then perform a random
// walk of the register-level pointer flows Table I must follow — pointer
// copies, stack spills and reloads (alias records), in-bounds word/byte
// accesses, straight-line multi-dereference runs (loop-free hot blocks
// over one region, the shape the guard-hoisting layer fuses), bounded
// pointer arithmetic, alloc/free churn, and call trees deep enough to
// exercise the k=2 call-string context fold.
//
// A program is described by a Genome: a plain-data step list that is
// (a) derived deterministically from a seed via faultinject.DeriveSeed
// and an internal xorshift64 stream (no math/rand, no wall clock — the
// package passes chexvet with zero waivers), and (b) interpreted by
// Build with per-step validity guards, so *any* subset of the steps
// still builds a well-formed program. That second property is what makes
// ddmin-style shrinking trivial: the shrinker deletes steps and rebuilds.
//
// Genomes may optionally carry one injected memory-safety violation with
// a ground-truth label (out-of-bounds, use-after-free, double-free, or a
// dangling pointer reloaded from a stale stack spill). The generator
// guarantees the labeled violation is always present in the built
// program: if the step it was attached to is skipped (or shrunk away),
// the mutation is force-emitted before the epilogue.
package progen

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"

	"chex86/internal/asm"
	"chex86/internal/core"
	"chex86/internal/faultinject"
	"chex86/internal/heap"
	"chex86/internal/isa"
)

// Mutation labels the single memory-safety violation injected into an
// otherwise safe program ("" = none).
type Mutation string

const (
	MutNone          Mutation = ""
	MutOOB           Mutation = "oob"
	MutUAF           Mutation = "uaf"
	MutDoubleFree    Mutation = "double-free"
	MutDanglingSpill Mutation = "dangling-spill"
)

// Mutations lists the injectable violation classes.
func Mutations() []Mutation {
	return []Mutation{MutOOB, MutUAF, MutDoubleFree, MutDanglingSpill}
}

// Expect returns the violation class the always-on pipeline must report
// for a program carrying this mutation (the ground-truth label).
func (m Mutation) Expect() core.ViolationKind {
	switch m {
	case MutOOB:
		return core.VOutOfBounds
	case MutUAF, MutDanglingSpill:
		return core.VUseAfterFree
	case MutDoubleFree:
		return core.VDoubleFree
	}
	return core.VNone
}

// valid reports whether m is a known mutation label.
func (m Mutation) valid() bool {
	return m == MutNone || m.Expect() != core.VNone
}

// StepKind is the operation class of one genome step.
type StepKind uint8

const (
	// StepMove copies the buffer's pointer to another pointer register
	// (the MOV tracking rule), evicting the previous tenant if it can be
	// reloaded from its spill slot.
	StepMove StepKind = iota
	// StepSpill stores the pointer to the buffer's stack slot (ST rule:
	// alias record).
	StepSpill
	// StepReload loads the pointer back from its spill slot (LD rule).
	StepReload
	// StepAccess performs an in-bounds word/byte load or store through
	// the tracked pointer (or the out-of-bounds access when this is the
	// mutation step of an OOB genome).
	StepAccess
	// StepArith advances the pointer within bounds, stores through it,
	// and rewinds (ADD/SUB rules).
	StepArith
	// StepCall passes the pointer to a generated function tree (calls
	// nest Funcs deep — the k=2 context fold sees real call strings).
	StepCall
	// StepChurn frees the buffer and immediately reallocates it into the
	// same home register (allocation turnover: new PID, possibly reused
	// memory).
	StepChurn
	// StepRun performs a straight-line run of dereferences — several
	// loads/stores at consecutive word offsets through the tracked
	// pointer, all loop-free within one hot block over one region. The
	// shape exists for the guard-hoisting layer: a dominator-anchored
	// fused guard must cover every dereference of the run.
	StepRun
	// StepICall calls a generated function through a function pointer
	// materialized in a scratch register — an indirect CALL whose target
	// comes from a register, not the instruction. The shape exists for
	// the superblock layer: indirect calls must terminate a block and
	// never chain.
	StepICall
	// StepJumpTable dispatches through a stack-resident jump table: the
	// case handlers' addresses are stored to stack slots, the baked
	// selector's slot is loaded back, and an indirect JMP lands in one of
	// the case blocks, each of which accesses the buffer and rejoins.
	StepJumpTable

	numStepKinds
)

// Step is one operation of the generated random walk. All fields are
// baked at generation time; Build draws no randomness.
type Step struct {
	Kind StepKind `json:"k"`
	Buf  int      `json:"b"`
	// Dst is the target pointer-register index for StepMove, the
	// entry-function index for StepCall and StepICall, the dereference
	// count for StepRun, and the selected case index for StepJumpTable.
	Dst int `json:"d,omitempty"`
	// Off is the byte offset for StepAccess (8-aligned, past the end for
	// the OOB mutation step), the advance distance for StepArith, the
	// starting offset of a StepRun, and the case-block access offset of a
	// StepJumpTable.
	Off int64 `json:"o,omitempty"`
	// Flavor selects the access form for StepAccess: 0 word load,
	// 1 word store, 2 byte load, 3 byte store.
	Flavor uint8 `json:"f,omitempty"`
	// Mut marks the step the genome's mutation is attached to.
	Mut bool `json:"m,omitempty"`
}

// Options configures generation. Zero values select the defaults that
// match the historical security fuzz suite (4 buffers of 128 bytes,
// 40 steps, 3-deep call tree).
type Options struct {
	Steps    int
	Bufs     int
	BufBytes int64
	Funcs    int
	Mutation Mutation
}

// Genome is the plain-data description of one generated program. It
// marshals to deterministic JSON (fixed field order, no maps), which is
// what the corpus content-addresses and the campaign cache hashes.
type Genome struct {
	Seed     uint64   `json:"seed"`
	Bufs     int      `json:"bufs"`
	BufBytes int64    `json:"bufBytes"`
	Funcs    int      `json:"funcs"`
	Mutation Mutation `json:"mutation,omitempty"`
	Steps    []Step   `json:"steps"`
}

// pointerRegs is the pool the generator shuffles allocations through.
var pointerRegs = []isa.Reg{isa.RBX, isa.R12, isa.R13, isa.R14}

// maxSteps bounds genome size when loading untrusted corpus bytes.
const maxSteps = 1 << 16

// jtCases is the number of case handlers a StepJumpTable emits.
const jtCases = 3

// rng is a xorshift64 stream: deterministic, allocation-free, and
// explicitly seeded (chexvet forbids math/rand's global state here).
type rng struct{ s uint64 }

func newRNG(seed uint64) *rng {
	if seed == 0 {
		seed = 0x9e3779b97f4a7c15
	}
	return &rng{s: seed}
}

func (r *rng) next() uint64 {
	r.s ^= r.s << 13
	r.s ^= r.s >> 7
	r.s ^= r.s << 17
	return r.s
}

func (r *rng) intn(n int) int { return int(r.next() % uint64(n)) }

func (r *rng) i63n(n int64) int64 { return int64(r.next() % uint64(n)) }

// Generate derives a genome deterministically from the seed: the same
// (seed, options) pair yields a byte-identical genome — and therefore a
// byte-identical program — in any process on any platform.
func Generate(seed uint64, opts Options) *Genome {
	g := &Genome{
		Seed:     seed,
		Bufs:     opts.Bufs,
		BufBytes: opts.BufBytes,
		Funcs:    opts.Funcs,
		Mutation: opts.Mutation,
	}
	if opts.Steps <= 0 {
		opts.Steps = 40
	}
	if g.Bufs <= 0 {
		g.Bufs = 4
	}
	if g.BufBytes <= 0 {
		g.BufBytes = 128
	}
	if opts.Funcs < 0 {
		g.Funcs = 0
	} else if opts.Funcs == 0 {
		g.Funcs = 3
	}
	g.normalize()

	r := newRNG(faultinject.DeriveSeed(seed, "progen", string(g.Mutation)))
	g.Steps = make([]Step, 0, opts.Steps)
	for len(g.Steps) < opts.Steps && len(g.Steps) < maxSteps {
		s := Step{Buf: r.intn(g.Bufs)}
		switch pick := r.intn(11); pick {
		case 0:
			s.Kind = StepMove
			s.Dst = r.intn(len(pointerRegs))
		case 1:
			s.Kind = StepSpill
		case 2:
			s.Kind = StepReload
		case 3, 4:
			s.Kind = StepAccess
			s.Off = 8 * r.i63n(g.BufBytes/8)
			if r.intn(4) == 0 {
				s.Flavor = uint8(2 + r.intn(2)) // byte access, rarer
			} else {
				s.Flavor = uint8(r.intn(2))
			}
		case 5:
			s.Kind = StepArith
			s.Off = 8 * r.i63n(4)
		case 6:
			if g.Funcs == 0 {
				s.Kind = StepAccess
				s.Off = 8 * r.i63n(g.BufBytes/8)
				s.Flavor = uint8(r.intn(2))
			} else {
				s.Kind = StepCall
				s.Dst = r.intn(g.Funcs)
			}
		case 7:
			s.Kind = StepChurn
		case 8:
			s.Kind = StepRun
			s.Dst = 2 + r.intn(3) // 2..4 consecutive words
			if words := g.BufBytes / 8; words > int64(s.Dst) {
				s.Off = 8 * r.i63n(words-int64(s.Dst)+1)
			}
		case 9:
			if g.Funcs == 0 {
				s.Kind = StepAccess
				s.Off = 8 * r.i63n(g.BufBytes/8)
				s.Flavor = uint8(r.intn(2))
			} else {
				s.Kind = StepICall
				s.Dst = r.intn(g.Funcs)
			}
		case 10:
			s.Kind = StepJumpTable
			s.Dst = r.intn(jtCases)
			s.Off = 8 * r.i63n(g.BufBytes/8)
		}
		g.Steps = append(g.Steps, s)
	}

	if g.Mutation != MutNone && len(g.Steps) > 0 {
		mi := r.intn(len(g.Steps))
		g.Steps[mi].Mut = true
		if g.Mutation == MutOOB {
			// Bake the out-of-bounds access into the step itself so Build
			// needs no randomness: an 8-aligned offset just past the end.
			g.Steps[mi].Kind = StepAccess
			g.Steps[mi].Off = g.BufBytes + 8*r.i63n(4)
			g.Steps[mi].Flavor = uint8(r.intn(2))
		}
	}
	return g
}

// normalize clamps genome parameters into the ranges Build supports.
// Generated genomes are always normal; genomes parsed from corpus files
// or fuzz inputs are sanitized here.
func (g *Genome) normalize() {
	if g.Bufs < 1 {
		g.Bufs = 1
	}
	if g.Bufs > len(pointerRegs) {
		g.Bufs = len(pointerRegs)
	}
	if g.BufBytes < 16 {
		g.BufBytes = 16
	}
	if g.BufBytes > 4096 {
		g.BufBytes = 4096
	}
	g.BufBytes &^= 7
	if g.Funcs < 0 {
		g.Funcs = 0
	}
	if g.Funcs > 8 {
		g.Funcs = 8
	}
	if !g.Mutation.valid() {
		g.Mutation = MutUAF
	}
	if len(g.Steps) > maxSteps {
		g.Steps = g.Steps[:maxSteps]
	}
	for i := range g.Steps {
		s := &g.Steps[i]
		if s.Kind >= numStepKinds {
			s.Kind = StepAccess
		}
		if s.Buf < 0 || s.Buf >= g.Bufs {
			s.Buf = 0
		}
		switch s.Kind {
		case StepMove:
			if s.Dst < 0 || s.Dst >= len(pointerRegs) {
				s.Dst = 0
			}
		case StepCall, StepICall:
			if g.Funcs == 0 {
				s.Kind = StepAccess
				s.Off = 0
				s.Flavor = 0
			} else if s.Dst < 0 || s.Dst >= g.Funcs {
				s.Dst = 0
			}
		case StepJumpTable:
			if s.Dst < 0 || s.Dst >= jtCases {
				s.Dst = 0
			}
		}
		switch s.Kind {
		case StepAccess:
			s.Flavor &= 3
			if s.Mut && g.Mutation == MutOOB {
				// Keep the offset out of bounds but near the end.
				ex := s.Off - g.BufBytes
				if ex < 0 || ex > 24 {
					ex = 0
				}
				s.Off = g.BufBytes + (ex &^ 7)
			} else if s.Off < 0 || s.Off >= g.BufBytes {
				s.Off = 0
			} else {
				s.Off &^= 7
			}
		case StepArith:
			if s.Off < 0 || s.Off > 24 {
				s.Off = 0
			}
			s.Off &^= 7
		case StepRun:
			if s.Dst < 2 {
				s.Dst = 2
			}
			if max := int(g.BufBytes / 8); s.Dst > max {
				s.Dst = max
			}
			s.Off &^= 7
			if s.Off < 0 || s.Off+8*int64(s.Dst) > g.BufBytes {
				s.Off = 0
			}
		case StepJumpTable:
			s.Off &^= 7
			if s.Off < 0 || s.Off >= g.BufBytes {
				s.Off = 0
			}
		}
	}
}

// Clone returns a deep copy of the genome.
func (g *Genome) Clone() *Genome {
	c := *g
	c.Steps = append([]Step(nil), g.Steps...)
	return &c
}

// CanonicalJSON renders the genome as deterministic bytes (fixed field
// order, no maps) for content addressing.
func (g *Genome) CanonicalJSON() []byte {
	data, err := json.Marshal(g)
	if err != nil {
		panic(fmt.Sprintf("progen: genome marshal: %v", err))
	}
	return data
}

// Hash returns the hex SHA-256 of the canonical JSON — the corpus
// content address.
func (g *Genome) Hash() string {
	sum := sha256.Sum256(g.CanonicalJSON())
	return hex.EncodeToString(sum[:])
}

// ParseGenome decodes and sanitizes a genome from corpus or fuzz bytes.
func ParseGenome(data []byte) (*Genome, error) {
	var g Genome
	if err := json.Unmarshal(data, &g); err != nil {
		return nil, fmt.Errorf("progen: parse genome: %w", err)
	}
	g.normalize()
	return &g, nil
}

// slotFor is buffer i's stack spill slot (below any nested return
// addresses: calls reach at most ~6 deep, well above -64).
func slotFor(i int) int64 { return int64(-64 - 16*i) }

// Build interprets the genome into an executable program. It is fully
// deterministic — every operand was baked at generation time — and every
// step is guarded by the current emission state (buffer freed? pointer
// reloadable?), so deleting arbitrary steps still yields a well-formed
// program. A genome with a mutation always emits it: if the flagged step
// never fires, the violation is forced before the epilogue.
func (g *Genome) Build() (*asm.Program, error) {
	g.normalize()
	b := asm.NewBuilder()

	// Prologue: allocate the buffers; each pointer lands in its home
	// register.
	for i := 0; i < g.Bufs; i++ {
		b.MovRI(isa.RDI, g.BufBytes)
		b.CallAddr(heap.MallocEntry)
		b.MovRR(pointerRegs[i], isa.RAX)
	}

	// home[i] = register currently holding buffer i's pointer.
	home := make([]isa.Reg, g.Bufs)
	copy(home, pointerRegs)
	// spilled[i] = stack slot holding buffer i's pointer, or 0.
	spilled := make([]int64, g.Bufs)
	freed := make([]bool, g.Bufs)

	// freeReg returns a pointer register no buffer currently lives in.
	freeReg := func() isa.Reg {
		for _, r := range pointerRegs {
			used := false
			for j := range home {
				if home[j] == r {
					used = true
					break
				}
			}
			if !used {
				return r
			}
		}
		return isa.RNone
	}
	// ensureHome reloads buffer i's pointer from its spill slot if it
	// lost its register; reports whether the pointer is usable.
	ensureHome := func(i int) bool {
		if home[i] != isa.RNone {
			return true
		}
		r := freeReg()
		if r == isa.RNone || spilled[i] == 0 {
			return false
		}
		b.Load(r, isa.RSP, spilled[i])
		home[i] = r
		return true
	}

	// emitMutation injects the genome's temporal mutation on buffer i
	// (OOB is baked into its access step instead).
	emitMutation := func(i int) {
		switch g.Mutation {
		case MutUAF:
			b.MovRR(isa.RDI, home[i])
			b.CallAddr(heap.FreeEntry)
			freed[i] = true
			b.Load(isa.RDX, home[i], 0) // read through the dangling pointer
		case MutDoubleFree:
			b.MovRR(isa.RDI, home[i])
			b.CallAddr(heap.FreeEntry)
			freed[i] = true
			b.MovRR(isa.RDI, home[i])
			b.CallAddr(heap.FreeEntry)
		case MutDanglingSpill:
			// Spill the pointer, free the buffer, destroy the register
			// copy, reload the now-dangling pointer from the stale spill
			// slot (the alias record must resurrect the freed PID's tag),
			// and dereference it.
			slot := slotFor(i)
			b.Store(isa.RSP, slot, home[i])
			spilled[i] = slot
			b.MovRR(isa.RDI, home[i])
			b.CallAddr(heap.FreeEntry)
			freed[i] = true
			b.MovRI(home[i], 0)
			b.Load(home[i], isa.RSP, slot)
			b.Load(isa.RDX, home[i], 0)
		}
	}

	emitAccess := func(i int, s *Step) {
		switch s.Flavor {
		case 0:
			b.Load(isa.RDX, home[i], s.Off)
		case 1:
			b.MovRI(isa.RDX, s.Off)
			b.Store(home[i], s.Off, isa.RDX)
		case 2:
			b.LoadB(isa.RDX, home[i], s.Off)
		default:
			b.MovRI(isa.RDX, 0x5A)
			b.StoreB(home[i], s.Off, isa.RDX)
		}
	}

	mutFired := g.Mutation == MutNone
	for si := range g.Steps {
		s := &g.Steps[si]
		i := s.Buf
		if freed[i] || !ensureHome(i) {
			continue
		}
		if s.Mut && !mutFired && g.Mutation != MutOOB {
			emitMutation(i)
			mutFired = true
			continue
		}
		switch s.Kind {
		case StepMove:
			dst := pointerRegs[s.Dst]
			if dst == home[i] {
				break
			}
			// Only evict a buffer that can be reloaded from its spill
			// slot.
			ok := true
			for j := range home {
				if home[j] == dst && spilled[j] == 0 {
					ok = false
				}
			}
			if !ok {
				break
			}
			for j := range home {
				if home[j] == dst {
					home[j] = isa.RNone
				}
			}
			b.MovRR(dst, home[i])
			home[i] = dst
		case StepSpill:
			slot := slotFor(i)
			b.Store(isa.RSP, slot, home[i])
			spilled[i] = slot
		case StepReload:
			if spilled[i] == 0 {
				break
			}
			b.Load(home[i], isa.RSP, spilled[i])
		case StepAccess:
			emitAccess(i, s)
			if s.Mut && g.Mutation == MutOOB {
				mutFired = true
			}
		case StepArith:
			b.AddRI(home[i], s.Off)
			b.MovRI(isa.RDX, 1)
			b.Store(home[i], 0, isa.RDX) // still inside the buffer
			b.SubRI(home[i], s.Off)
		case StepCall:
			b.MovRR(isa.RDI, home[i])
			b.Call(fnLabel(s.Dst))
		case StepChurn:
			b.MovRR(isa.RDI, home[i])
			b.CallAddr(heap.FreeEntry)
			b.MovRI(isa.RDI, g.BufBytes)
			b.CallAddr(heap.MallocEntry)
			b.MovRR(home[i], isa.RAX)
			spilled[i] = 0 // the old spill slot now holds a dangling pointer
		case StepRun:
			// Loop-free multi-dereference run: alternating loads and
			// stores at consecutive word offsets, all in one hot block.
			for w := 0; w < s.Dst; w++ {
				off := s.Off + 8*int64(w)
				if w%2 == 0 {
					b.Load(isa.RDX, home[i], off)
				} else {
					b.MovRI(isa.RDX, off)
					b.Store(home[i], off, isa.RDX)
				}
			}
		case StepICall:
			// Function-pointer call: the target is materialized in a
			// scratch register, so the CALL's target comes from RCX, not
			// the instruction word.
			b.MovRR(isa.RDI, home[i])
			b.MovLabel(isa.RCX, fnLabel(s.Dst))
			b.CallReg(isa.RCX)
		case StepJumpTable:
			// Stack-resident jump table: write every case handler's
			// address to its slot, load the baked selector's entry back,
			// and dispatch through the register. Each case accesses the
			// buffer and rejoins via a direct jump.
			for k := 0; k < jtCases; k++ {
				b.MovLabel(isa.RCX, jtCase(si, k))
				b.Store(isa.RSP, jtSlot(k), isa.RCX)
			}
			b.Load(isa.RCX, isa.RSP, jtSlot(s.Dst))
			b.JmpReg(isa.RCX)
			for k := 0; k < jtCases; k++ {
				b.Label(jtCase(si, k))
				if k%2 == 0 {
					b.Load(isa.RDX, home[i], s.Off)
				} else {
					b.MovRI(isa.RDX, s.Off)
					b.Store(home[i], s.Off, isa.RDX)
				}
				b.Jmp(jtJoin(si))
			}
			b.Label(jtJoin(si))
		}
	}

	if !mutFired {
		// The flagged step never fired (unusable buffer, or it was shrunk
		// away); force the mutation on the last usable buffer so the
		// ground-truth label always holds.
		lastUsable := -1
		for i := range home {
			if !freed[i] && ensureHome(i) {
				lastUsable = i
			}
		}
		if lastUsable < 0 {
			return nil, fmt.Errorf("progen: no usable buffer to emit %q mutation", g.Mutation)
		}
		if g.Mutation == MutOOB {
			b.Load(isa.RDX, home[lastUsable], g.BufBytes)
		} else {
			emitMutation(lastUsable)
		}
	}

	// Epilogue: free what's still live, halt, then the call-tree bodies.
	for i := 0; i < g.Bufs; i++ {
		if freed[i] || !ensureHome(i) {
			continue
		}
		b.MovRR(isa.RDI, home[i])
		b.CallAddr(heap.FreeEntry)
	}
	b.Hlt()

	// fn<j> reads and writes through the pointer argument in RDI at an
	// in-bounds offset and calls the next function down, so a StepCall
	// exercises tag propagation across real call strings (depth up to
	// Funcs, beyond the k=2 fold).
	for j := 0; j < g.Funcs; j++ {
		off := (8 * int64(j)) % g.BufBytes
		b.Label(fnLabel(j))
		b.Load(isa.RDX, isa.RDI, off)
		if j+1 < g.Funcs {
			b.Call(fnLabel(j + 1))
		}
		b.Store(isa.RDI, off, isa.RDX)
		b.Ret()
	}
	return b.Build()
}

func fnLabel(j int) string { return fmt.Sprintf("fn%d", j) }

// jtSlot is case handler k's jump-table stack slot, placed below the
// spill slots and the deepest nested return addresses.
func jtSlot(k int) int64 { return int64(-192 - 8*k) }

func jtCase(si, k int) string { return fmt.Sprintf("jt%d_case%d", si, k) }

func jtJoin(si int) string { return fmt.Sprintf("jt%d_join", si) }

// ProgramDigest builds the genome and returns the hex SHA-256 of the
// emitted instruction stream — the "golden bytes" witness the
// determinism tests pin: the same seed must produce this exact program
// in any process on any platform.
func (g *Genome) ProgramDigest() (string, error) {
	prog, err := g.Build()
	if err != nil {
		return "", err
	}
	h := sha256.New()
	fmt.Fprintf(h, "base=%#x\n", prog.TextBase)
	for i := range prog.Insts {
		in := &prog.Insts[i]
		fmt.Fprintf(h, "%d %d %+v %+v %#x %#x %d\n", in.Op, in.Cond, in.Dst, in.Src, in.Target, in.Addr, in.EncLen)
	}
	return hex.EncodeToString(h.Sum(nil)), nil
}
