package progen

import (
	"bytes"
	"testing"

	"chex86/internal/isa"
)

// TestGenerateDeterminism: the same (seed, options) pair must produce a
// byte-identical genome and a byte-identical program.
func TestGenerateDeterminism(t *testing.T) {
	for seed := uint64(0); seed < 20; seed++ {
		for _, mut := range append([]Mutation{MutNone}, Mutations()...) {
			a := Generate(seed, Options{Mutation: mut})
			b := Generate(seed, Options{Mutation: mut})
			if !bytes.Equal(a.CanonicalJSON(), b.CanonicalJSON()) {
				t.Fatalf("seed %d mut %q: genomes differ", seed, mut)
			}
			da, err := a.ProgramDigest()
			if err != nil {
				t.Fatalf("seed %d mut %q: build: %v", seed, mut, err)
			}
			db, err := b.ProgramDigest()
			if err != nil {
				t.Fatalf("seed %d mut %q: build: %v", seed, mut, err)
			}
			if da != db {
				t.Fatalf("seed %d mut %q: program digests differ", seed, mut)
			}
		}
	}
}

// TestGenerateDistinct: different seeds should produce different
// programs (sanity that the stream actually varies).
func TestGenerateDistinct(t *testing.T) {
	seen := map[string]uint64{}
	for seed := uint64(0); seed < 50; seed++ {
		d, err := Generate(seed, Options{}).ProgramDigest()
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if prev, dup := seen[d]; dup {
			t.Fatalf("seeds %d and %d generated identical programs", prev, seed)
		}
		seen[d] = seed
	}
}

// TestGoldenDigests pins exact program digests for a few seeds: any
// change to the generator's instruction stream — including an
// unintentional platform or Go-version dependence — fails here. These
// are the cross-process "golden bytes": the constants were produced by a
// separate process running the same generator.
func TestGoldenDigests(t *testing.T) {
	golden := map[uint64]string{
		1: "4df44f45f9a061127777e3d1de40e6e1a96536c05e38538fd3be6a871096642d",
		2: "5ceb826f5779a625a5f5e656b1b931614d70aafebbb2a907210b8c98fa5fb33e",
		3: "cec73a6cee2d4d03a02e2585c0270c130780e166d410bb5f092dc56eeee2843e",
	}
	for seed, want := range golden {
		got, err := Generate(seed, Options{}).ProgramDigest()
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if got != want {
			t.Errorf("seed %d: program digest %s, want %s", seed, got, want)
		}
	}
}

// TestMutationAlwaysPresent: a mutated genome must always build (the
// fallback guarantees the labeled violation is emitted even when the
// flagged step cannot fire) — including after every step was shrunk
// away.
func TestMutationAlwaysPresent(t *testing.T) {
	for _, mut := range Mutations() {
		for seed := uint64(0); seed < 20; seed++ {
			g := Generate(seed, Options{Mutation: mut})
			if _, err := g.Build(); err != nil {
				t.Fatalf("seed %d mut %q: %v", seed, mut, err)
			}
			empty := g.Clone()
			empty.Steps = nil
			if _, err := empty.Build(); err != nil {
				t.Fatalf("seed %d mut %q with no steps: %v", seed, mut, err)
			}
		}
	}
}

// TestParseGenomeSanitizes: hostile corpus bytes must clamp into ranges
// Build accepts.
func TestParseGenomeSanitizes(t *testing.T) {
	hostile := []byte(`{"seed":1,"bufs":99,"bufBytes":-8,"funcs":1000,"mutation":"nonsense",
		"steps":[{"k":200,"b":-5,"d":99,"o":-1,"f":77},{"k":3,"b":40,"o":99999}]}`)
	g, err := ParseGenome(hostile)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if g.Bufs < 1 || g.Bufs > 4 || g.BufBytes < 16 || g.Funcs > 8 {
		t.Fatalf("not sanitized: %+v", g)
	}
	if !g.Mutation.valid() {
		t.Fatalf("mutation not sanitized: %q", g.Mutation)
	}
	if _, err := g.Build(); err != nil {
		t.Fatalf("sanitized genome must build: %v", err)
	}
	if _, err := ParseGenome([]byte("{nope")); err == nil {
		t.Fatal("malformed JSON must error")
	}
}

// TestSubsetsBuild: any step subset of a genome must build (the property
// the shrinker depends on).
func TestSubsetsBuild(t *testing.T) {
	g := Generate(7, Options{Mutation: MutUAF})
	for cut := 0; cut <= len(g.Steps); cut += 5 {
		sub := g.Clone()
		sub.Steps = sub.Steps[:cut]
		if _, err := sub.Build(); err != nil {
			t.Fatalf("prefix %d: %v", cut, err)
		}
		sub2 := g.Clone()
		sub2.Steps = sub2.Steps[cut:]
		if _, err := sub2.Build(); err != nil {
			t.Fatalf("suffix %d: %v", cut, err)
		}
	}
}

// TestStepRunShape: a StepRun genome must emit its full straight-line
// dereference run — Dst memory operations at consecutive word offsets —
// and normalization must clamp runs that would walk off the buffer.
func TestStepRunShape(t *testing.T) {
	g := &Genome{
		Seed: 1, Bufs: 1, BufBytes: 128,
		Steps: []Step{{Kind: StepRun, Buf: 0, Dst: 4, Off: 16}},
	}
	prog, err := g.Build()
	if err != nil {
		t.Fatal(err)
	}
	// The run follows the single malloc in the prologue: count the memory
	// ops through the buffer pointer after the allocator returns.
	derefs := 0
	for i := range prog.Insts {
		in := &prog.Insts[i]
		if in.Dst.Kind == isa.OpMem || in.Src.Kind == isa.OpMem {
			derefs++
		}
	}
	// Prologue has no loads/stores besides the run (malloc argument moves
	// are register-only); epilogue frees via registers too.
	if derefs != 4 {
		t.Fatalf("StepRun emitted %d dereferences, want 4", derefs)
	}

	// Clamp: a run past the end of the buffer resets to offset 0.
	bad := &Genome{Bufs: 1, BufBytes: 32, Steps: []Step{{Kind: StepRun, Dst: 9, Off: 24}}}
	bad.normalize()
	if s := bad.Steps[0]; s.Dst != 4 || s.Off != 0 {
		t.Fatalf("normalize gave dst=%d off=%d, want a 4-word run at 0", s.Dst, s.Off)
	}

	// Generated sweeps must actually include the shape.
	found := false
	for seed := uint64(0); seed < 30 && !found; seed++ {
		for _, s := range Generate(seed, Options{}).Steps {
			if s.Kind == StepRun {
				found = true
			}
		}
	}
	if !found {
		t.Fatal("no StepRun generated across 30 seeds")
	}
}

// TestIndirectShapes: StepICall must emit a register-target CALL and
// StepJumpTable a register-target JMP fed from a stack-resident table,
// and generated sweeps must actually include both shapes.
func TestIndirectShapes(t *testing.T) {
	g := &Genome{
		Seed: 1, Bufs: 1, BufBytes: 128, Funcs: 2,
		Steps: []Step{
			{Kind: StepICall, Buf: 0, Dst: 1},
			{Kind: StepJumpTable, Buf: 0, Dst: 2, Off: 16},
		},
	}
	prog, err := g.Build()
	if err != nil {
		t.Fatal(err)
	}
	iCalls, iJmps := 0, 0
	for i := range prog.Insts {
		in := &prog.Insts[i]
		if in.Dst.Kind != isa.OpReg {
			continue
		}
		switch in.Op {
		case isa.CALL:
			iCalls++
		case isa.JMP:
			iJmps++
		}
	}
	if iCalls != 1 || iJmps != 1 {
		t.Fatalf("got %d indirect calls and %d indirect jumps, want 1 and 1", iCalls, iJmps)
	}
	// The MovLabel immediates must have resolved to real text addresses.
	for i := range prog.Insts {
		in := &prog.Insts[i]
		if in.Op == isa.MOV && in.Src.Kind == isa.OpImm && in.Dst.Reg == isa.RCX {
			if a := uint64(in.Src.Imm); a < prog.TextBase || a >= prog.End() {
				t.Fatalf("function-pointer immediate %#x outside text [%#x,%#x)", a, prog.TextBase, prog.End())
			}
		}
	}

	// Normalization: a selector or offset outside the table clamps.
	bad := &Genome{Bufs: 1, BufBytes: 32, Funcs: 1,
		Steps: []Step{{Kind: StepJumpTable, Dst: 99, Off: 4096}, {Kind: StepICall, Dst: -4}}}
	bad.normalize()
	if s := bad.Steps[0]; s.Dst != 0 || s.Off != 0 {
		t.Fatalf("jump-table step not clamped: %+v", s)
	}
	if s := bad.Steps[1]; s.Dst != 0 {
		t.Fatalf("indirect-call step not clamped: %+v", s)
	}

	foundIC, foundJT := false, false
	for seed := uint64(0); seed < 40 && !(foundIC && foundJT); seed++ {
		for _, s := range Generate(seed, Options{}).Steps {
			switch s.Kind {
			case StepICall:
				foundIC = true
			case StepJumpTable:
				foundJT = true
			}
		}
	}
	if !foundIC || !foundJT {
		t.Fatalf("sweep coverage: indirect-call=%v jump-table=%v across 40 seeds", foundIC, foundJT)
	}
}
