package progen

import (
	"bytes"
	"testing"
)

// TestGenerateDeterminism: the same (seed, options) pair must produce a
// byte-identical genome and a byte-identical program.
func TestGenerateDeterminism(t *testing.T) {
	for seed := uint64(0); seed < 20; seed++ {
		for _, mut := range append([]Mutation{MutNone}, Mutations()...) {
			a := Generate(seed, Options{Mutation: mut})
			b := Generate(seed, Options{Mutation: mut})
			if !bytes.Equal(a.CanonicalJSON(), b.CanonicalJSON()) {
				t.Fatalf("seed %d mut %q: genomes differ", seed, mut)
			}
			da, err := a.ProgramDigest()
			if err != nil {
				t.Fatalf("seed %d mut %q: build: %v", seed, mut, err)
			}
			db, err := b.ProgramDigest()
			if err != nil {
				t.Fatalf("seed %d mut %q: build: %v", seed, mut, err)
			}
			if da != db {
				t.Fatalf("seed %d mut %q: program digests differ", seed, mut)
			}
		}
	}
}

// TestGenerateDistinct: different seeds should produce different
// programs (sanity that the stream actually varies).
func TestGenerateDistinct(t *testing.T) {
	seen := map[string]uint64{}
	for seed := uint64(0); seed < 50; seed++ {
		d, err := Generate(seed, Options{}).ProgramDigest()
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if prev, dup := seen[d]; dup {
			t.Fatalf("seeds %d and %d generated identical programs", prev, seed)
		}
		seen[d] = seed
	}
}

// TestGoldenDigests pins exact program digests for a few seeds: any
// change to the generator's instruction stream — including an
// unintentional platform or Go-version dependence — fails here. These
// are the cross-process "golden bytes": the constants were produced by a
// separate process running the same generator.
func TestGoldenDigests(t *testing.T) {
	golden := map[uint64]string{
		1: "139ccc61308b394506ff5ed4e263837dd96d5f9c5b3a2e8b6268a6a3845bc31e",
		2: "a9bec054138c2084655471b0c7087dd20c090f73cb4e59b4436d3d48d28fcca2",
		3: "3f897f2c36cfebd9ea4bcbe36ffec32ae3b44751b4b0e174198b050898039b4c",
	}
	for seed, want := range golden {
		got, err := Generate(seed, Options{}).ProgramDigest()
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if got != want {
			t.Errorf("seed %d: program digest %s, want %s", seed, got, want)
		}
	}
}

// TestMutationAlwaysPresent: a mutated genome must always build (the
// fallback guarantees the labeled violation is emitted even when the
// flagged step cannot fire) — including after every step was shrunk
// away.
func TestMutationAlwaysPresent(t *testing.T) {
	for _, mut := range Mutations() {
		for seed := uint64(0); seed < 20; seed++ {
			g := Generate(seed, Options{Mutation: mut})
			if _, err := g.Build(); err != nil {
				t.Fatalf("seed %d mut %q: %v", seed, mut, err)
			}
			empty := g.Clone()
			empty.Steps = nil
			if _, err := empty.Build(); err != nil {
				t.Fatalf("seed %d mut %q with no steps: %v", seed, mut, err)
			}
		}
	}
}

// TestParseGenomeSanitizes: hostile corpus bytes must clamp into ranges
// Build accepts.
func TestParseGenomeSanitizes(t *testing.T) {
	hostile := []byte(`{"seed":1,"bufs":99,"bufBytes":-8,"funcs":1000,"mutation":"nonsense",
		"steps":[{"k":200,"b":-5,"d":99,"o":-1,"f":77},{"k":3,"b":40,"o":99999}]}`)
	g, err := ParseGenome(hostile)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if g.Bufs < 1 || g.Bufs > 4 || g.BufBytes < 16 || g.Funcs > 8 {
		t.Fatalf("not sanitized: %+v", g)
	}
	if !g.Mutation.valid() {
		t.Fatalf("mutation not sanitized: %q", g.Mutation)
	}
	if _, err := g.Build(); err != nil {
		t.Fatalf("sanitized genome must build: %v", err)
	}
	if _, err := ParseGenome([]byte("{nope")); err == nil {
		t.Fatal("malformed JSON must error")
	}
}

// TestSubsetsBuild: any step subset of a genome must build (the property
// the shrinker depends on).
func TestSubsetsBuild(t *testing.T) {
	g := Generate(7, Options{Mutation: MutUAF})
	for cut := 0; cut <= len(g.Steps); cut += 5 {
		sub := g.Clone()
		sub.Steps = sub.Steps[:cut]
		if _, err := sub.Build(); err != nil {
			t.Fatalf("prefix %d: %v", cut, err)
		}
		sub2 := g.Clone()
		sub2.Steps = sub2.Steps[cut:]
		if _, err := sub2.Build(); err != nil {
			t.Fatalf("suffix %d: %v", cut, err)
		}
	}
}
