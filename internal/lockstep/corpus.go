package lockstep

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"chex86/internal/lockstep/progen"
)

// Corpus is a content-addressed genome store on disk:
//
//	<dir>/seeds/<sha256-prefix>.json   — interesting seed genomes
//	<dir>/repros/<sha256-prefix>.json  — shrunk failure reproducers
//
// Files are the genome's canonical JSON, named by its SHA-256 (first 16
// hex chars), written atomically (temp file + rename), so concurrent
// writers and re-runs converge on identical content.
type Corpus struct {
	dir string
}

const (
	corpusSeeds  = "seeds"
	corpusRepros = "repros"
	hashPrefix   = 16
)

// OpenCorpus creates (or reuses) a corpus directory.
func OpenCorpus(dir string) (*Corpus, error) {
	for _, sub := range []string{corpusSeeds, corpusRepros} {
		if err := os.MkdirAll(filepath.Join(dir, sub), 0o755); err != nil {
			return nil, fmt.Errorf("lockstep: open corpus: %w", err)
		}
	}
	return &Corpus{dir: dir}, nil
}

// Dir returns the corpus root.
func (c *Corpus) Dir() string { return c.dir }

func (c *Corpus) put(sub string, g *progen.Genome) (string, error) {
	path := filepath.Join(c.dir, sub, g.Hash()[:hashPrefix]+".json")
	if _, err := os.Stat(path); err == nil {
		return path, nil // content-addressed: identical genome already stored
	}
	tmp, err := os.CreateTemp(filepath.Join(c.dir, sub), ".tmp-*")
	if err != nil {
		return "", fmt.Errorf("lockstep: corpus write: %w", err)
	}
	if _, err := tmp.Write(g.CanonicalJSON()); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return "", fmt.Errorf("lockstep: corpus write: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return "", fmt.Errorf("lockstep: corpus write: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return "", fmt.Errorf("lockstep: corpus write: %w", err)
	}
	return path, nil
}

// PutSeed persists an interesting seed genome; returns its path.
func (c *Corpus) PutSeed(g *progen.Genome) (string, error) { return c.put(corpusSeeds, g) }

// PutRepro persists a shrunk failure reproducer; returns its path.
func (c *Corpus) PutRepro(g *progen.Genome) (string, error) { return c.put(corpusRepros, g) }

func (c *Corpus) load(sub string) ([]*progen.Genome, error) {
	ents, err := os.ReadDir(filepath.Join(c.dir, sub))
	if err != nil {
		return nil, fmt.Errorf("lockstep: corpus read: %w", err)
	}
	names := make([]string, 0, len(ents))
	for _, e := range ents {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".json") || strings.HasPrefix(e.Name(), ".") {
			continue
		}
		names = append(names, e.Name())
	}
	sort.Strings(names)
	out := make([]*progen.Genome, 0, len(names))
	for _, name := range names {
		data, err := os.ReadFile(filepath.Join(c.dir, sub, name))
		if err != nil {
			return nil, fmt.Errorf("lockstep: corpus read: %w", err)
		}
		g, err := progen.ParseGenome(data)
		if err != nil {
			return nil, fmt.Errorf("lockstep: corpus %s/%s: %w", sub, name, err)
		}
		out = append(out, g)
	}
	return out, nil
}

// Seeds loads every stored seed genome, sorted by content address.
func (c *Corpus) Seeds() ([]*progen.Genome, error) { return c.load(corpusSeeds) }

// Repros loads every stored reproducer, sorted by content address.
func (c *Corpus) Repros() ([]*progen.Genome, error) { return c.load(corpusRepros) }
