package lockstep

import (
	"fmt"
	"strings"
	"sync/atomic"
)

// Metrics counts harness activity across every sweep in the process, for
// the /metrics text exposition in chexd (long campaigns submitted through
// the fabric report here). All fields are monotonic counters.
//
// The package itself never reads a wall clock — shrink timing uses an
// injected clock set only by CLIs (SetClock), which keeps internal/lockstep
// at zero chexvet waivers.
type Metrics struct {
	Programs            atomic.Int64
	Divergences         atomic.Int64
	InvariantViolations atomic.Int64
	MutantsInjected     atomic.Int64
	MutantsMissed       atomic.Int64
	ShrinkRuns          atomic.Int64
	ShrinkNS            atomic.Int64

	clock atomic.Value // func() int64 returning unix nanoseconds
}

// SharedMetrics is the process-wide instance: sweeps run through the
// campaign executor report here, and chexd renders it under /metrics.
var SharedMetrics = &Metrics{}

// SetClock injects the wall clock used to measure shrink duration
// (nanoseconds). Without one, shrink time is simply not recorded.
func (m *Metrics) SetClock(fn func() int64) { m.clock.Store(fn) }

func (m *Metrics) now() int64 {
	if fn, ok := m.clock.Load().(func() int64); ok && fn != nil {
		return fn()
	}
	return 0
}

// MetricsSnapshot is a point-in-time copy of the counters.
type MetricsSnapshot struct {
	Programs            int64
	Divergences         int64
	InvariantViolations int64
	MutantsInjected     int64
	MutantsMissed       int64
	ShrinkRuns          int64
	ShrinkNS            int64
}

// Snapshot copies the counters.
func (m *Metrics) Snapshot() MetricsSnapshot {
	return MetricsSnapshot{
		Programs:            m.Programs.Load(),
		Divergences:         m.Divergences.Load(),
		InvariantViolations: m.InvariantViolations.Load(),
		MutantsInjected:     m.MutantsInjected.Load(),
		MutantsMissed:       m.MutantsMissed.Load(),
		ShrinkRuns:          m.ShrinkRuns.Load(),
		ShrinkNS:            m.ShrinkNS.Load(),
	}
}

// Render emits the counters in the same text exposition format as the
// campaign metrics (`name value`, one per line, fixed order).
func (s MetricsSnapshot) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "lockstep_programs_total %d\n", s.Programs)
	fmt.Fprintf(&b, "lockstep_divergences_total %d\n", s.Divergences)
	fmt.Fprintf(&b, "lockstep_invariant_violations_total %d\n", s.InvariantViolations)
	fmt.Fprintf(&b, "lockstep_mutants_injected_total %d\n", s.MutantsInjected)
	fmt.Fprintf(&b, "lockstep_mutants_missed_total %d\n", s.MutantsMissed)
	fmt.Fprintf(&b, "lockstep_shrink_runs_total %d\n", s.ShrinkRuns)
	fmt.Fprintf(&b, "lockstep_shrink_seconds_total %.6f\n", float64(s.ShrinkNS)/1e9)
	return b.String()
}
