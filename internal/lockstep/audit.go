package lockstep

import (
	"context"
	"fmt"

	"chex86/internal/asm"
	"chex86/internal/core"
	"chex86/internal/pipeline"
	"chex86/internal/ptrflow"
)

// auditInvariants sweeps the design invariants the capability machinery
// promises, on the live pipeline state. It runs at commit strides and
// once at end of run, for tracker-backed variants only:
//
//   - every capability entry's integrity code must verify (Table.Audit
//     quarantines and reports corrupt entries — any hit here is silent
//     shadow-state corruption);
//   - the shadow capability table must agree with the emulator's
//     ground-truth allocation map: a live span's capability carries the
//     valid bit with matching base and bounds, a freed span's entry has
//     it cleared (quarantine/Truth consistency). Entries mid-generation
//     or mid-free (busy) are skipped, as are runs that already recorded
//     violations — an injected violation legitimately desynchronizes the
//     two views (that is what it is detecting).
func auditInvariants(sim *pipeline.Sim) []string {
	if !sim.Cfg.Variant.UsesTracker() {
		return nil
	}
	var out []string
	if pids := sim.Table.Audit(); len(pids) > 0 {
		out = append(out, fmt.Sprintf("capability integrity audit quarantined %d entries (first pid=%d)", len(pids), pids[0]))
	}
	if len(sim.Violations) > 0 {
		return out
	}
	for _, sp := range sim.M.Truth.Spans() {
		cap := sim.Table.Lookup(core.PID(sp.PID))
		if cap == nil {
			// Freed spans may have been evicted from the table; a live
			// heap span must still be covered.
			if sp.Live {
				out = append(out, fmt.Sprintf("live span pid=%d base=%#x has no capability entry", sp.PID, sp.Base))
			}
			continue
		}
		if cap.Perms&core.PermBusy != 0 {
			continue // allocation or free in flight at this stride
		}
		valid := cap.Perms&core.PermValid != 0
		if valid != sp.Live {
			out = append(out, fmt.Sprintf("pid=%d truth live=%v but capability valid=%v", sp.PID, sp.Live, valid))
			continue
		}
		if sp.Live && cap.Base != sp.Base {
			out = append(out, fmt.Sprintf("pid=%d capability base %#x != truth base %#x", sp.PID, cap.Base, sp.Base))
		}
		if sp.Live && uint64(cap.Bounds) != sp.Size {
			out = append(out, fmt.Sprintf("pid=%d capability bounds %d != truth size %d", sp.PID, cap.Bounds, sp.Size))
		}
	}
	return out
}

// crosscheckProgram replays the program under the static pointer-flow
// cross-check (internal/ptrflow): the live tracker's tag stream must be
// sound against the analyzer's verdicts — zero proven false negatives.
// The sweep samples safe programs through this (tag-lattice soundness is
// a per-program property; running every Nth keeps the harness fast).
func crosscheckProgram(ctx context.Context, prog *asm.Program, maxInsts uint64) (falseNegatives int, err error) {
	rep, err := ptrflow.Crosscheck(ctx, prog, ptrflow.CheckOptions{Harts: 1, MaxInsts: maxInsts})
	if err != nil {
		return 0, err
	}
	return rep.FalseNegatives, nil
}
