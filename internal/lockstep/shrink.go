package lockstep

import (
	"chex86/internal/lockstep/progen"
)

// Shrink minimizes a failing genome by deterministic delta debugging:
// ddmin-style chunked step removal (halving the chunk size as removals
// stop helping), then dropping the call tree and reducing the buffer
// count. Because progen.Build guards every step against the current
// emission state, any step subset is a well-formed program — the shrinker
// only ever deletes and re-tests.
//
// fails must report whether a candidate still reproduces the original
// failure; it is invoked at most maxAttempts times (default 200) so
// shrinking stays bounded even when every candidate re-runs the full
// condition matrix. Returns the smallest reproducer found and the number
// of attempts spent. Fully deterministic: candidate order depends only on
// the input genome.
func Shrink(g *progen.Genome, fails func(*progen.Genome) bool, maxAttempts int) (*progen.Genome, int) {
	if maxAttempts <= 0 {
		maxAttempts = 200
	}
	attempts := 0
	try := func(cand *progen.Genome) bool {
		if attempts >= maxAttempts {
			return false
		}
		attempts++
		return fails(cand)
	}

	best := g.Clone()
	chunk := (len(best.Steps) + 1) / 2
	for chunk > 0 {
		removed := false
		for start := 0; start < len(best.Steps) && attempts < maxAttempts; {
			end := start + chunk
			if end > len(best.Steps) {
				end = len(best.Steps)
			}
			cand := best.Clone()
			cand.Steps = append(cand.Steps[:start:start], cand.Steps[end:]...)
			if try(cand) {
				best = cand
				removed = true
				// Do not advance: the window now holds the steps that
				// followed the removed chunk.
			} else {
				start = end
			}
		}
		if attempts >= maxAttempts {
			break
		}
		if !removed {
			if chunk == 1 {
				break
			}
			chunk /= 2
		}
	}

	// Structural reductions: drop the call tree, then shed buffers (the
	// genome normalizer remaps steps that referenced removed ones).
	if best.Funcs > 0 && attempts < maxAttempts {
		cand := best.Clone()
		cand.Funcs = 0
		if try(cand) {
			best = cand
		}
	}
	for best.Bufs > 1 && attempts < maxAttempts {
		cand := best.Clone()
		cand.Bufs = best.Bufs - 1
		if !try(cand) {
			break
		}
		best = cand
	}
	return best, attempts
}
