package core

import (
	"testing"
	"testing/quick"

	"chex86/internal/isa"
	"chex86/internal/mem"
)

func TestCapabilityContains(t *testing.T) {
	c := &Capability{Base: 0x1000, Bounds: 64}
	if !c.Contains(0x1000, 8) || !c.Contains(0x1038, 8) {
		t.Fatal("in-bounds accesses rejected")
	}
	if c.Contains(0x1039, 8) || c.Contains(0xFF8, 8) || c.Contains(0x1040, 8) {
		t.Fatal("out-of-bounds accesses accepted")
	}
}

// TestContainsProperty: an access is accepted iff it lies entirely inside
// [base, base+bounds).
func TestContainsProperty(t *testing.T) {
	f := func(base uint32, bounds uint16, off uint16) bool {
		c := &Capability{Base: uint64(base), Bounds: uint32(bounds)}
		addr := uint64(base) + uint64(off)
		want := uint64(off)+8 <= uint64(bounds)
		return c.Contains(addr, 8) == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestGenLifecycle(t *testing.T) {
	tab := NewTable(mem.New())
	c, v := tab.GenBegin(1, 128, 0)
	if v != nil || c == nil {
		t.Fatalf("genBegin failed: %v", v)
	}
	if !c.Perms.Has(PermBusy) || c.Perms.Has(PermValid) {
		t.Fatal("busy must be set, valid clear, between Begin and End")
	}
	tab.GenEnd(c, 0x2000)
	if c.Perms.Has(PermBusy) || !c.Perms.Has(PermValid) {
		t.Fatal("End must clear busy and set valid")
	}
	if c.Base != 0x2000 || c.Bounds != 128 {
		t.Fatal("base/bounds lost")
	}
	// A failed allocation (base 0) must not become valid.
	c2, _ := tab.GenBegin(2, 64, 0)
	tab.GenEnd(c2, 0)
	if c2.Perms.Has(PermValid) {
		t.Fatal("NULL allocation must not be valid")
	}
}

func TestResourceExhaustion(t *testing.T) {
	tab := NewTable(nil)
	tab.MaxAllocSize = 1 << 20
	_, v := tab.GenBegin(1, 2<<20, 0x400000)
	if v == nil || v.Kind != VResourceExhaustion {
		t.Fatalf("oversized request not flagged: %v", v)
	}
	if c, v2 := tab.GenBegin(0, 64, 0); c != nil || v2 != nil {
		t.Fatal("pid 0 performs only the size check")
	}
}

func TestCheckSemantics(t *testing.T) {
	tab := NewTable(nil)
	c, _ := tab.GenBegin(1, 64, 0)
	tab.GenEnd(c, 0x1000)

	if v := tab.Check(1, 0x1000, 8, false, 0); v != nil {
		t.Fatalf("in-bounds read flagged: %v", v)
	}
	if v := tab.Check(1, 0x1040, 8, true, 0); v == nil || v.Kind != VOutOfBounds {
		t.Fatalf("OOB write not flagged: %v", v)
	}
	if v := tab.Check(0, 0x1000, 8, false, 0); v != nil {
		t.Fatal("pid 0 means no capability to check")
	}
	if v := tab.Check(WildPID, 0x1000, 8, false, 0); v == nil || v.Kind != VWildDereference {
		t.Fatal("wild pid must be flagged")
	}
	if v := tab.Check(99, 0x1000, 8, false, 0); v == nil || v.Kind != VWildDereference {
		t.Fatal("unknown pid must be flagged")
	}
}

func TestFreeLifecycle(t *testing.T) {
	tab := NewTable(nil)
	c, _ := tab.GenBegin(1, 64, 0)
	tab.GenEnd(c, 0x1000)

	if v := tab.FreeBegin(1, 0x1000, 0); v != nil {
		t.Fatalf("legitimate free flagged: %v", v)
	}
	tab.FreeEnd(1)
	if v := tab.Check(1, 0x1000, 8, false, 0); v == nil || v.Kind != VUseAfterFree {
		t.Fatalf("dereference after free must be UAF: %v", v)
	}
	if v := tab.FreeBegin(1, 0x1000, 0); v == nil || v.Kind != VDoubleFree {
		t.Fatalf("second free must be double-free: %v", v)
	}
	if v := tab.FreeBegin(0, 0x1000, 0); v == nil || v.Kind != VInvalidFree {
		t.Fatal("free of untracked pointer must be invalid-free")
	}
}

func TestFreeBaseMismatch(t *testing.T) {
	tab := NewTable(nil)
	c, _ := tab.GenBegin(1, 64, 0)
	tab.GenEnd(c, 0x1000)
	if v := tab.FreeBegin(1, 0x1010, 0); v == nil || v.Kind != VInvalidFree {
		t.Fatal("freeing a mid-object pointer must be invalid-free")
	}
}

func TestShadowMaterialization(t *testing.T) {
	m := mem.New()
	tab := NewTable(m)
	c, _ := tab.GenBegin(5, 64, 0)
	tab.GenEnd(c, 0x1234)
	if m.ShadowRSS() == 0 {
		t.Fatal("table entries must materialize into shadow memory")
	}
	if m.ReadU64(ShadowAddr(5)) != 0x1234 {
		t.Fatal("entry base not written to its shadow slot")
	}
	if tab.FootprintBytes() != 16 {
		t.Fatalf("one 128-bit entry expected, footprint %d", tab.FootprintBytes())
	}
}

func TestMSRRegistrationLimit(t *testing.T) {
	msrs := NewMSRConfig(2)
	reg := func(entry uint64) error {
		return msrs.Register(RegisteredFn{Kind: FnMalloc, Entry: entry, Exit: entry + 4, ArgReg: isa.RDI})
	}
	if reg(0x100) != nil || reg(0x200) != nil {
		t.Fatal("registrations within the limit must succeed")
	}
	if reg(0x300) == nil {
		t.Fatal("the model-specific limit must be enforced")
	}
	if msrs.AtEntry(0x100) == nil || msrs.AtExit(0x104) == nil {
		t.Fatal("entry/exit lookup broken")
	}
	if msrs.AtEntry(0x104) != nil {
		t.Fatal("an exit address is not an entry")
	}
}

func TestContextPolicy(t *testing.T) {
	if !Always().Covers(0xdeadbeef) {
		t.Fatal("Always covers everything")
	}
	p := Only(Region{Lo: 0x1000, Hi: 0x2000})
	if !p.Covers(0x1000) || !p.Covers(0x1fff) {
		t.Fatal("region interior not covered")
	}
	if p.Covers(0x2000) || p.Covers(0xfff) {
		t.Fatal("region is half-open")
	}
	var none ContextPolicy
	if none.Covers(0x1000) {
		t.Fatal("the zero policy covers nothing")
	}
}

func TestPermissionCheck(t *testing.T) {
	tab := NewTable(nil)
	c, _ := tab.GenBegin(1, 64, 0)
	tab.GenEnd(c, 0x1000)
	c.Perms &^= PermWrite // read-only capability
	c.Reseal()
	if v := tab.Check(1, 0x1000, 8, true, 0); v == nil || v.Kind != VPermission {
		t.Fatal("write through a read-only capability must be flagged")
	}
	if v := tab.Check(1, 0x1000, 8, false, 0); v != nil {
		t.Fatal("read through a read-only capability is fine")
	}
}
