// Package core implements the CHEx86 capability system: 128-bit
// capabilities held in a privileged per-process shadow capability table,
// the two-phase capability generation/free protocol driven by intercepted
// heap-management entry/exit points, capability validation (capCheck)
// semantics, the in-processor capability cache, the MSR-based registration
// of heap-management routines, and the context-sensitivity policy that
// restricts check injection to security-critical code regions.
package core

import (
	"fmt"
	"sort"

	"chex86/internal/cache"
	"chex86/internal/isa"
	"chex86/internal/mem"
)

// PID is a capability identifier. 0 means "no capability"; WildPID (-1) is
// the special identifier assigned by the MOVI rule to registers loaded with
// integer-constant addresses (Table I), for which no capability exists, so
// any dereference through them is flagged.
type PID = int64

// WildPID tags pointers materialized from integer immediates.
const WildPID PID = -1

// Perms is the 32-bit permissions word of a capability (Section IV-B).
type Perms uint32

const (
	PermRead  Perms = 1 << iota // read permitted
	PermWrite                   // write permitted
	PermExec                    // execute permitted
	PermBusy                    // allocation/free in progress
	PermValid                   // capability points to valid (live) memory
)

// Has reports whether all bits in p2 are set.
func (p Perms) Has(p2 Perms) bool { return p&p2 == p2 }

// Capability is one 128-bit shadow capability table entry: a 64-bit base,
// a 32-bit bounds (object size in bytes), and a 32-bit permissions word.
// The entry carries an integrity code (ecc) maintained by the table on
// every legitimate mutation; single-event upsets in the privileged shadow
// metadata — the fault model exercised by internal/faultinject — are
// detected on the next validation and fail closed.
type Capability struct {
	PID    PID
	Base   uint64
	Bounds uint32
	Perms  Perms

	ecc uint8
}

// seal recomputes the entry's integrity code after a legitimate mutation.
func (c *Capability) seal() { c.ecc = c.integrity() }

// Reseal recomputes the integrity code after an intentional edit of the
// exported fields (e.g. a privileged permissions downgrade). Fault
// injection deliberately skips this — an unsealed flip is what the
// integrity check exists to catch.
func (c *Capability) Reseal() { c.seal() }

// IntegrityOK reports whether the entry's integrity code matches its
// contents (false after an unsealed bit-flip).
func (c *Capability) IntegrityOK() bool { return c.ecc == c.integrity() }

// integrity folds the 128-bit entry into the 8-bit parity code modeling
// the per-entry ECC of the privileged shadow structures.
func (c *Capability) integrity() uint8 {
	x := uint64(c.PID) ^ c.Base ^ uint64(c.Bounds)<<13 ^ uint64(c.Perms)<<29
	x ^= x >> 32
	x ^= x >> 16
	x ^= x >> 8
	return uint8(x)
}

// Contains reports whether the size-byte access at addr falls entirely
// within the capability's bounds.
func (c *Capability) Contains(addr uint64, size uint32) bool {
	return addr >= c.Base && addr+uint64(size) <= c.Base+uint64(c.Bounds)
}

// String renders the capability.
func (c *Capability) String() string {
	return fmt.Sprintf("cap{pid=%d base=%#x bounds=%#x perms=%#x}", c.PID, c.Base, c.Bounds, c.Perms)
}

// ViolationKind classifies detected memory-safety violations.
type ViolationKind uint8

const (
	VNone ViolationKind = iota
	VOutOfBounds
	VUseAfterFree
	VDoubleFree
	VInvalidFree
	VWildDereference
	VResourceExhaustion
	VPermission
	// VMetadataCorrupt is raised when a capability entry fails its
	// integrity check: the privileged shadow metadata was corrupted (a
	// fault-injection campaign, an SEU). The entry is quarantined and the
	// access faults — the fail-closed contract for metadata faults.
	VMetadataCorrupt
)

var violationNames = [...]string{
	"none", "out-of-bounds", "use-after-free", "double-free",
	"invalid-free", "wild-dereference", "resource-exhaustion", "permission",
	"metadata-corrupt",
}

// String names the violation kind.
func (k ViolationKind) String() string {
	if int(k) < len(violationNames) {
		return violationNames[k]
	}
	return "violation?"
}

// Violation is the fault raised by capability micro-ops.
type Violation struct {
	Kind ViolationKind
	PID  PID
	EA   uint64
	RIP  uint64
	Msg  string
}

// Error implements error.
func (v *Violation) Error() string {
	return fmt.Sprintf("capability violation: %s (pid=%d ea=%#x rip=%#x) %s",
		v.Kind, v.PID, v.EA, v.RIP, v.Msg)
}

// TableStats aggregates shadow capability table activity.
type TableStats struct {
	Generated  uint64
	Freed      uint64
	Checks     uint64
	Violations uint64

	// Degraded counts enforcement-capacity losses that were tolerated
	// with accounting instead of a violation: capability entries lost to
	// forced eviction and corrupt entries quarantined by integrity checks
	// or audit sweeps. A non-zero count means enforcement is (explicitly)
	// partial — never silently wrong.
	Degraded uint64
}

// Table is the per-process shadow capability table. It lives in the
// privileged shadow address space; entries are materialized into shadow
// memory pages so footprint is reflected in the Figure 9 accounting.
type Table struct {
	caps map[PID]*Capability
	mem  *mem.Memory

	// One-entry lookup memo for the dereference-check fast path: guest
	// code dereferences the same object repeatedly, and the map probe is
	// measurable host time at full workload scale. The memo caches the
	// entry pointer only (entries mutate in place through that pointer),
	// so it needs invalidating exactly when the map binding itself
	// changes: inserts rebind a PID to a fresh entry, deletes remove it.
	memoPID PID
	memoCap *Capability

	// MaxAllocSize is the pre-configured maximum allocatable block size;
	// capGen.Begin flags larger requests as resource-exhaustion attacks
	// (Section VII-A, 1 GB in the paper's experiments).
	MaxAllocSize uint64

	Stats TableStats
}

// capEntryBytes is the size of one shadow capability table entry (128 bits).
const capEntryBytes = 16

// NewTable returns an empty shadow capability table backed by m's shadow
// half.
func NewTable(m *mem.Memory) *Table {
	return &Table{
		caps:         make(map[PID]*Capability),
		mem:          m,
		MaxAllocSize: 1 << 30,
	}
}

// ShadowAddr returns the shadow-space address of the table entry for pid
// (used by the timing model to charge hierarchy accesses on capability
// cache misses).
func ShadowAddr(pid PID) uint64 {
	if pid < 0 {
		pid = -pid
	}
	return mem.ShadowBase + uint64(pid)*capEntryBytes
}

// Lookup returns the capability for pid, or nil.
func (t *Table) Lookup(pid PID) *Capability { return t.caps[pid] }

// lookupMemo is Lookup through the one-entry memo (hot dereference path).
func (t *Table) lookupMemo(pid PID) *Capability {
	if pid == t.memoPID && t.memoCap != nil {
		return t.memoCap
	}
	c := t.caps[pid]
	if c != nil {
		t.memoPID, t.memoCap = pid, c
	}
	return c
}

// bindMemo points the memo at a just-inserted entry; dropMemo clears it
// around deletes. Every t.caps insert or delete must call one of them.
func (t *Table) bindMemo(c *Capability) { t.memoPID, t.memoCap = c.PID, c }

func (t *Table) dropMemo() { t.memoPID, t.memoCap = 0, nil }

// Len returns the number of entries (live and freed) in the table.
func (t *Table) Len() int { return len(t.caps) }

// FootprintBytes returns the shadow memory consumed by the table.
func (t *Table) FootprintBytes() uint64 { return uint64(len(t.caps)) * capEntryBytes }

// GenBegin implements capGen.Begin: it instantiates a new capability
// tagged with pid, with the busy bit set and bounds copied from the
// allocation-size argument (%rdi). It returns a resource-exhaustion
// violation for requests beyond MaxAllocSize. A zero pid (the allocation
// failed and produced no trackable block) performs only the size check.
func (t *Table) GenBegin(pid PID, size uint64, rip uint64) (*Capability, *Violation) {
	t.Stats.Generated++
	if size > t.MaxAllocSize {
		t.Stats.Violations++
		return nil, &Violation{Kind: VResourceExhaustion, EA: size, RIP: rip,
			Msg: fmt.Sprintf("allocation of %d bytes exceeds limit %d", size, t.MaxAllocSize)}
	}
	if pid == 0 {
		return nil, nil
	}
	bounds := size
	if bounds > 0xFFFF_FFFF {
		bounds = 0xFFFF_FFFF
	}
	c := &Capability{PID: pid, Bounds: uint32(bounds), Perms: PermRead | PermWrite | PermBusy}
	c.seal()
	t.caps[c.PID] = c
	t.bindMemo(c)
	t.materialize(c)
	return c, nil
}

// GenEnd implements capGen.End: it records the base address returned in
// %rax, resets the busy bit, and sets the valid bit iff the base is
// non-zero.
func (t *Table) GenEnd(c *Capability, base uint64) {
	c.Base = base
	c.Perms &^= PermBusy
	if base != 0 {
		c.Perms |= PermValid
	}
	c.seal()
	t.materialize(c)
}

// AddGlobal installs a capability tagged with pid for a global data object
// found in the symbol table at program-load time (Section IV-C). Read-only
// objects (.rodata) receive no write permission.
func (t *Table) AddGlobal(pid PID, base, size uint64, readOnly bool) *Capability {
	bounds := size
	if bounds > 0xFFFF_FFFF {
		bounds = 0xFFFF_FFFF
	}
	perms := PermRead | PermValid
	if !readOnly {
		perms |= PermWrite
	}
	c := &Capability{PID: pid, Base: base, Bounds: uint32(bounds), Perms: perms}
	c.seal()
	t.caps[c.PID] = c
	t.bindMemo(c)
	t.materialize(c)
	return c
}

// FreeBegin implements capFree.Begin: it flags invalid frees (zero or
// unknown PID, or a pointer that is not the capability's base) and double
// frees (valid bit already clear), and otherwise sets the busy bit. addr
// is the pointer being freed (%rdi at the intercepted entry point).
func (t *Table) FreeBegin(pid PID, addr uint64, rip uint64) *Violation {
	if pid == 0 || pid == WildPID {
		t.Stats.Violations++
		return &Violation{Kind: VInvalidFree, PID: pid, EA: addr, RIP: rip, Msg: "free of untracked pointer"}
	}
	c := t.caps[pid]
	if c == nil {
		t.Stats.Violations++
		return &Violation{Kind: VInvalidFree, PID: pid, EA: addr, RIP: rip, Msg: "no capability for pid"}
	}
	if v := t.verify(c, addr, rip); v != nil {
		return v
	}
	if !c.Perms.Has(PermValid) {
		t.Stats.Violations++
		return &Violation{Kind: VDoubleFree, PID: pid, EA: c.Base, RIP: rip, Msg: "valid bit already clear"}
	}
	if addr != 0 && c.Base != 0 && addr != c.Base {
		t.Stats.Violations++
		return &Violation{Kind: VInvalidFree, PID: pid, EA: addr, RIP: rip,
			Msg: "freed pointer does not match the capability's base"}
	}
	c.Perms |= PermBusy
	c.seal()
	t.materialize(c)
	return nil
}

// FreeEnd implements capFree.End: it resets both the valid and busy bits.
// The capability remains in the table so later dereferences are detected
// as use-after-free.
func (t *Table) FreeEnd(pid PID) {
	c := t.caps[pid]
	if c == nil {
		return
	}
	c.Perms &^= PermValid | PermBusy
	c.seal()
	t.Stats.Freed++
	t.materialize(c)
}

// Check implements capCheck: it validates the size-byte access at ea
// through the capability identified by pid, returning a violation or nil.
func (t *Table) Check(pid PID, ea uint64, size uint32, write bool, rip uint64) *Violation {
	t.Stats.Checks++
	if pid == 0 {
		return nil
	}
	if pid == WildPID {
		t.Stats.Violations++
		return &Violation{Kind: VWildDereference, PID: pid, EA: ea, RIP: rip,
			Msg: "dereference of integer-constant pointer with no capability"}
	}
	c := t.lookupMemo(pid)
	if c == nil {
		t.Stats.Violations++
		return &Violation{Kind: VWildDereference, PID: pid, EA: ea, RIP: rip, Msg: "no capability for pid"}
	}
	if v := t.verify(c, ea, rip); v != nil {
		return v
	}
	if !c.Perms.Has(PermValid) {
		t.Stats.Violations++
		return &Violation{Kind: VUseAfterFree, PID: pid, EA: ea, RIP: rip, Msg: "valid bit clear"}
	}
	if !c.Contains(ea, size) {
		t.Stats.Violations++
		return &Violation{Kind: VOutOfBounds, PID: pid, EA: ea, RIP: rip,
			Msg: fmt.Sprintf("access outside [%#x, %#x)", c.Base, c.Base+uint64(c.Bounds))}
	}
	need := PermRead
	if write {
		need = PermWrite
	}
	if !c.Perms.Has(need) {
		t.Stats.Violations++
		return &Violation{Kind: VPermission, PID: pid, EA: ea, RIP: rip, Msg: "insufficient permissions"}
	}
	return nil
}

// verify checks an entry's integrity code before it is trusted. A corrupt
// entry is quarantined (dropped from the table, with Degraded accounting)
// and the access fails closed with a metadata-corrupt violation.
func (t *Table) verify(c *Capability, ea uint64, rip uint64) *Violation {
	if c.IntegrityOK() {
		return nil
	}
	delete(t.caps, c.PID)
	t.dropMemo()
	t.Stats.Degraded++
	t.Stats.Violations++
	return &Violation{Kind: VMetadataCorrupt, PID: c.PID, EA: ea, RIP: rip,
		Msg: "capability entry failed its integrity check; entry quarantined"}
}

// ---------------------------------------------------------------------
// Fault-injection hooks (internal/faultinject). These model faults in the
// privileged shadow metadata itself — the substrate the CHEx86 security
// argument rests on — so campaigns can prove the fail-closed contract.
// ---------------------------------------------------------------------

// PIDs returns every table entry's identifier in ascending order (a
// deterministic enumeration for seeded fault-injection campaigns).
func (t *Table) PIDs() []PID {
	out := make([]PID, 0, len(t.caps))
	for pid := range t.caps {
		out = append(out, pid)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// FlipBit flips one bit of the 128-bit entry for pid without resealing
// its integrity code — a single-event upset in the shadow capability
// table. Bits [0,64) hit the base, [64,96) the bounds, [96,128) the
// permissions word. It reports whether an entry was present to corrupt.
func (t *Table) FlipBit(pid PID, bit uint) bool {
	c := t.caps[pid]
	if c == nil {
		return false
	}
	switch {
	case bit < 64:
		c.Base ^= 1 << bit
	case bit < 96:
		c.Bounds ^= 1 << (bit - 64)
	default:
		c.Perms ^= 1 << (bit - 96)
	}
	t.materialize(c)
	return true
}

// Evict force-drops the entry for pid — eviction-driven capability loss
// (a shadow structure reclaimed under pressure). The loss is accounted as
// degraded enforcement; later dereferences through pid fail closed as
// wild dereferences. It reports whether an entry was present.
func (t *Table) Evict(pid PID) bool {
	if t.caps[pid] == nil {
		return false
	}
	delete(t.caps, pid)
	t.dropMemo()
	t.Stats.Degraded++
	return true
}

// Audit sweeps the table verifying every entry's integrity code — the
// background scrubber pass. Corrupt entries are quarantined with Degraded
// accounting; their PIDs are returned in ascending order.
func (t *Table) Audit() []PID {
	var bad []PID
	for _, pid := range t.PIDs() {
		if c := t.caps[pid]; c != nil && !c.IntegrityOK() {
			bad = append(bad, pid)
			delete(t.caps, pid)
			t.dropMemo()
			t.Stats.Degraded++
		}
	}
	return bad
}

// materialize writes the 128-bit entry into shadow memory so the table's
// footprint appears in shadow RSS.
func (t *Table) materialize(c *Capability) {
	if t.mem == nil {
		return
	}
	a := ShadowAddr(c.PID)
	t.mem.WriteU64(a, c.Base)
	t.mem.WriteU64(a+8, uint64(c.Bounds)|uint64(c.Perms)<<32)
}

// NewCapCache returns the in-processor capability cache: fully associative
// with the given entry count (64 in the default CHEx86 design), keyed by
// PID.
func NewCapCache(entries int) *cache.KeyCache {
	return cache.NewKeyCache("capability", entries, entries, 0)
}

// FnKind classifies a registered heap-management routine.
type FnKind uint8

const (
	FnMalloc FnKind = iota
	FnCalloc
	FnRealloc
	FnFree
)

// RegisteredFn is one MSR-registered heap-management routine: the
// instruction addresses of its entry and exit points and its register
// signature (Section IV-C).
type RegisteredFn struct {
	Kind   FnKind
	Entry  uint64
	Exit   uint64
	ArgReg isa.Reg // size argument (alloc) or pointer argument (free)
	RetReg isa.Reg // returned pointer (alloc)
}

// MSRConfig is the set of model-specific registers the OS kernel programs
// when scheduling a process on a CHEx86 core. MaxFns models the
// model-specific limit on registered entry/exit points per process.
type MSRConfig struct {
	MaxFns int
	fns    []RegisteredFn
	byAddr map[uint64]*RegisteredFn
}

// NewMSRConfig returns an empty MSR configuration with the given
// registration limit (0 means the default of 16).
func NewMSRConfig(maxFns int) *MSRConfig {
	if maxFns <= 0 {
		maxFns = 16
	}
	return &MSRConfig{MaxFns: maxFns, byAddr: make(map[uint64]*RegisteredFn)}
}

// Register records a heap-management routine. It returns an error when the
// model-specific registration limit is exhausted.
func (c *MSRConfig) Register(fn RegisteredFn) error {
	if len(c.fns) >= c.MaxFns {
		return fmt.Errorf("core: MSR registration limit (%d) exceeded", c.MaxFns)
	}
	c.fns = append(c.fns, fn)
	f := &c.fns[len(c.fns)-1]
	c.byAddr[fn.Entry] = f
	c.byAddr[fn.Exit] = f
	return nil
}

// AtEntry returns the registered routine whose entry point is addr, or nil.
func (c *MSRConfig) AtEntry(addr uint64) *RegisteredFn {
	f := c.byAddr[addr]
	if f != nil && f.Entry == addr {
		return f
	}
	return nil
}

// AtExit returns the registered routine whose exit point is addr, or nil.
func (c *MSRConfig) AtExit(addr uint64) *RegisteredFn {
	f := c.byAddr[addr]
	if f != nil && f.Exit == addr {
		return f
	}
	return nil
}

// Region is a half-open RIP range [Lo, Hi).
type Region struct{ Lo, Hi uint64 }

// ContextPolicy selects which code regions receive capCheck injection.
// The zero value (All=false, no regions) disables all check injection;
// Always() returns the always-on policy.
type ContextPolicy struct {
	All     bool
	Regions []Region
}

// Always returns a policy that instruments every code region.
func Always() ContextPolicy { return ContextPolicy{All: true} }

// Only returns a policy that instruments just the given regions — the
// context-sensitive mode where only security-critical code is checked
// while allocations are still tracked globally (Section VII-D).
func Only(regions ...Region) ContextPolicy { return ContextPolicy{Regions: regions} }

// Covers reports whether the policy instruments the instruction at rip.
func (p ContextPolicy) Covers(rip uint64) bool {
	if p.All {
		return true
	}
	for _, r := range p.Regions {
		if rip >= r.Lo && rip < r.Hi {
			return true
		}
	}
	return false
}
