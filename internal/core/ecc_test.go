package core

import "testing"

// TestFlipBitDetectedOnCheck: an unsealed single-bit flip in a capability
// entry fails its integrity check at the next validation, surfaces as a
// metadata-corrupt violation, and quarantines the entry.
func TestFlipBitDetectedOnCheck(t *testing.T) {
	tab := NewTable(nil)
	c, _ := tab.GenBegin(1, 64, 0)
	tab.GenEnd(c, 0x1000)

	if !tab.FlipBit(1, 3) { // base bit
		t.Fatal("flip must land on a live entry")
	}
	v := tab.Check(1, 0x1000, 8, false, 0x42)
	if v == nil || v.Kind != VMetadataCorrupt {
		t.Fatalf("corrupt entry must be flagged as metadata-corrupt, got %v", v)
	}
	if tab.Stats.Degraded != 1 {
		t.Fatalf("quarantine must be accounted, Degraded = %d", tab.Stats.Degraded)
	}
	if tab.Lookup(1) != nil {
		t.Fatal("corrupt entry must be quarantined (removed)")
	}
	// The fail-closed follow-up: later dereferences through the
	// quarantined PID read as wild, never as silently-allowed.
	if v := tab.Check(1, 0x1000, 8, false, 0); v == nil || v.Kind != VWildDereference {
		t.Fatalf("post-quarantine dereference must be wild, got %v", v)
	}
}

// TestFlipBitEverySegment: flips in the base, bounds, and permission
// segments of the 128-bit entry are all ECC-visible.
func TestFlipBitEverySegment(t *testing.T) {
	for _, bit := range []uint{0, 63, 64, 95, 96, 127} {
		tab := NewTable(nil)
		c, _ := tab.GenBegin(1, 64, 0)
		tab.GenEnd(c, 0x1000)
		tab.FlipBit(1, bit)
		if tab.Lookup(1).IntegrityOK() {
			t.Fatalf("bit %d flip not visible to the integrity code", bit)
		}
	}
}

// TestAuditQuarantinesLatentFaults: corruption never reached by a check is
// converted into accounted degradation by the end-of-run audit sweep.
func TestAuditQuarantinesLatentFaults(t *testing.T) {
	tab := NewTable(nil)
	for pid := PID(1); pid <= 3; pid++ {
		c, _ := tab.GenBegin(pid, 64, 0)
		tab.GenEnd(c, 0x1000*uint64(pid))
	}
	tab.FlipBit(2, 70) // bounds bit, never checked afterwards

	bad := tab.Audit()
	if len(bad) != 1 || bad[0] != 2 {
		t.Fatalf("audit must quarantine exactly the corrupt entry, got %v", bad)
	}
	if tab.Stats.Degraded != 1 {
		t.Fatalf("audit quarantine must be accounted, Degraded = %d", tab.Stats.Degraded)
	}
	if tab.Lookup(1) == nil || tab.Lookup(3) == nil {
		t.Fatal("healthy entries must survive the audit")
	}
	if again := tab.Audit(); len(again) != 0 {
		t.Fatalf("second audit must be clean, got %v", again)
	}
}

// TestEvictAccountsDegradation: a forced eviction is accounted at
// injection time and later dereferences fail closed as wild.
func TestEvictAccountsDegradation(t *testing.T) {
	tab := NewTable(nil)
	c, _ := tab.GenBegin(1, 64, 0)
	tab.GenEnd(c, 0x1000)

	if !tab.Evict(1) {
		t.Fatal("evict must land on a live entry")
	}
	if tab.Stats.Degraded != 1 {
		t.Fatalf("eviction must be accounted, Degraded = %d", tab.Stats.Degraded)
	}
	if tab.Evict(1) {
		t.Fatal("evicting a missing entry must report false")
	}
	if v := tab.Check(1, 0x1000, 8, false, 0); v == nil || v.Kind != VWildDereference {
		t.Fatalf("post-eviction dereference must be wild, got %v", v)
	}
}

// TestPIDsSortedAndFresh: PIDs enumerates deterministically (sorted), the
// property campaign scheduling depends on for reproducibility.
func TestPIDsSortedAndFresh(t *testing.T) {
	tab := NewTable(nil)
	for _, pid := range []PID{5, 1, 3} {
		c, _ := tab.GenBegin(pid, 64, 0)
		tab.GenEnd(c, 0x1000*uint64(pid))
	}
	pids := tab.PIDs()
	if len(pids) != 3 || pids[0] != 1 || pids[1] != 3 || pids[2] != 5 {
		t.Fatalf("PIDs must be sorted, got %v", pids)
	}
}
