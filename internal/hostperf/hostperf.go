// Package hostperf measures and gates the simulator's host-side
// throughput: thousands of simulated instructions retired per wall-clock
// second (Kinst/s) and heap objects allocated per simulated instruction.
//
// Simulated results are deterministic; host throughput is not. The package
// therefore never touches the wall clock itself — every entry point takes
// an injected Clock, keeping internal/ free of determinism-lint waivers
// and making the measurement logic testable with a fake clock. Only
// cmd/chexperf (and other cmd/ binaries) bind the real clock.
//
// Cross-host comparability comes from Calibrate: a fixed CPU-bound kernel
// whose score scales with single-core host speed. Gating compares
// host-normalized throughput (Kinst/s divided by the host score measured
// in the same process), so a committed baseline from one machine remains
// meaningful on another within the tolerance band.
package hostperf

import (
	"encoding/json"
	"fmt"
	"runtime"
	"sort"

	"chex86/internal/decode"
	"chex86/internal/pipeline"
	"chex86/internal/workload"
)

// Clock returns monotonic nanoseconds. cmd/ binaries bind it to the wall
// clock; tests bind a counter.
type Clock func() int64

// VariantName returns the short canonical variant name used in baseline
// keys and report columns — the same spelling faultinject.VariantByName
// accepts and campaign specs use (Variant.String() is the long display
// form, too wide for tables and too fragile for JSON keys).
func VariantName(v decode.Variant) string {
	switch v {
	case decode.VariantInsecure:
		return "baseline"
	case decode.VariantHardwareOnly:
		return "hardware"
	case decode.VariantBinaryTranslation:
		return "bintrans"
	case decode.VariantMicrocodeAlwaysOn:
		return "always-on"
	case decode.VariantMicrocodePrediction:
		return "prediction"
	case decode.VariantASan:
		return "asan"
	case decode.VariantWatchdog:
		return "watchdog"
	}
	return v.String()
}

// Sample is one (workload, variant) throughput measurement.
type Sample struct {
	Workload string  `json:"workload"`
	Variant  string  `json:"variant"`
	Insts    uint64  `json:"insts"`    // simulated instructions retired
	WallNS   int64   `json:"wall_ns"`  // host wall time for the measured run
	Allocs   uint64  `json:"allocs"`   // heap objects allocated during the run
	HitRate  float64 `json:"hit_rate"` // μop translation cache hit rate
	// Superblock replay telemetry (zero when the variant excludes
	// superblocks or they were disabled for the run).
	SBBuilt     uint64 `json:"sb_built,omitempty"`     // superblocks installed
	SBChains    uint64 `json:"sb_chains,omitempty"`    // successor links patched
	SBFallbacks uint64 `json:"sb_fallbacks,omitempty"` // mid-block exits to the single-op path
}

// KinstPerSec returns thousands of simulated instructions per host second.
func (s Sample) KinstPerSec() float64 {
	if s.WallNS <= 0 {
		return 0
	}
	return float64(s.Insts) / (float64(s.WallNS) / 1e9) / 1e3
}

// AllocsPerInst returns heap objects allocated per simulated instruction.
func (s Sample) AllocsPerInst() float64 {
	if s.Insts == 0 {
		return 0
	}
	return float64(s.Allocs) / float64(s.Insts)
}

// Report is a full measurement run: a host-speed score plus one sample per
// measured (workload, variant) pair. The committed bench_baseline.json is
// a Report.
type Report struct {
	HostScore float64  `json:"host_score"` // Calibrate result on the measuring host
	Samples   []Sample `json:"samples"`
}

// MeasureOpts configures one Measure call.
type MeasureOpts struct {
	Scale         float64 // workload scale factor (0 → 0.25)
	MaxInsts      uint64  // instructions to retire after warmup (0 → 200k)
	NoSuperblocks bool    // disable superblock replay (the -superblocks=off escape hatch)
}

// Measure runs one (workload, variant) pair and samples throughput and
// allocation counts. The warmup phase (the workload's setup instructions)
// executes before the clock starts so steady-state throughput is measured,
// matching the simulator's own warmup-windowed statistics.
func Measure(clock Clock, p *workload.Profile, v decode.Variant, opts MeasureOpts) (Sample, error) {
	if opts.Scale == 0 {
		opts.Scale = 0.25
	}
	if opts.MaxInsts == 0 {
		opts.MaxInsts = 200_000
	}
	prog, err := p.Build(opts.Scale)
	if err != nil {
		return Sample{}, fmt.Errorf("%s: build: %w", p.Name, err)
	}
	cfg := pipeline.DefaultConfig()
	cfg.Variant = v
	cfg.WarmupInsts = p.SetupInsts()
	cfg.MaxInsts = opts.MaxInsts + cfg.WarmupInsts
	cfg.NoSuperblocks = opts.NoSuperblocks
	harts := 1
	if p.Threads > 0 {
		harts = p.Threads
	}
	sim, err := pipeline.NewSim(prog, cfg, harts)
	if err != nil {
		return Sample{}, fmt.Errorf("%s/%v: %w", p.Name, v, err)
	}

	var msBefore, msAfter runtime.MemStats
	runtime.ReadMemStats(&msBefore)
	start := clock()
	res, err := sim.Run()
	wall := clock() - start
	runtime.ReadMemStats(&msAfter)
	if err != nil {
		return Sample{}, fmt.Errorf("%s/%v: run: %w", p.Name, v, err)
	}
	sb := sim.SuperblockStats()
	return Sample{
		Workload:    p.Name,
		Variant:     VariantName(v),
		Insts:       res.MacroInsts,
		WallNS:      wall,
		Allocs:      msAfter.Mallocs - msBefore.Mallocs,
		HitRate:     sim.UopCacheStats().HitRate(),
		SBBuilt:     sb.Built,
		SBChains:    sb.ChainsPatched,
		SBFallbacks: sb.Fallbacks,
	}, nil
}

// calibrateIters sizes the calibration kernel: large enough to average
// over scheduler noise, small enough to finish in tens of milliseconds.
const calibrateIters = 1 << 22

// calibrateRounds is how many times the kernel runs; the best round is
// the score. A single round is hostage to scheduler preemption — observed
// round-to-round swings exceed 30% on loaded hosts — while the max over
// several rounds converges on the machine's true single-core speed.
const calibrateRounds = 5

// Calibrate scores the host's single-core speed with a fixed CPU-bound
// kernel (xorshift PRNG feeding a dependent walk over a cache-resident
// table — the same mix of ALU, branch, and L1 load work the simulator's
// hot loop performs). The score is kernel iterations per microsecond from
// the fastest of several rounds; normalized throughput is Kinst/s divided
// by this score.
func Calibrate(clock Clock) float64 {
	var table [4096]uint64
	for i := range table {
		table[i] = uint64(i) * 0x9E3779B97F4A7C15
	}
	best := 0.0
	for r := 0; r < calibrateRounds; r++ {
		x := uint64(0x243F6A8885A308D3)
		var acc uint64
		start := clock()
		for i := 0; i < calibrateIters; i++ {
			x ^= x << 13
			x ^= x >> 7
			x ^= x << 17
			acc += table[(x+acc)&4095]
		}
		wall := clock() - start
		runtime.KeepAlive(acc)
		if wall > 0 {
			if score := float64(calibrateIters) / (float64(wall) / 1e3); score > best {
				best = score
			}
		}
	}
	return best
}

// Problem is one gate failure found by Compare.
type Problem struct {
	Workload string
	Variant  string
	Msg      string
}

func (p Problem) String() string {
	return fmt.Sprintf("%s/%s: %s", p.Workload, p.Variant, p.Msg)
}

// allocSlack absorbs measurement noise in allocs/instruction: one-time
// costs (page materialization, map growth) amortize differently across
// runs, so an increase below this threshold is not a regression.
const allocSlack = 0.02

// Compare gates current against baseline: a host-normalized Kinst/s drop
// beyond tolerance (e.g. 0.20 for 20%) or any material allocs/instruction
// increase is a Problem. Samples present in only one report are a hard
// failure in both directions — a benchmark key unknown to the baseline
// means the baseline is stale, and a silently vanished benchmark must
// not pass the gate. allowNew waives only the first direction (chexperf
// -allow-new), for the turn where a new benchmark lands before its
// baseline is regenerated.
func Compare(baseline, current *Report, tolerance float64, allowNew bool) []Problem {
	var problems []Problem
	if baseline.HostScore <= 0 || current.HostScore <= 0 {
		return []Problem{{Msg: fmt.Sprintf("host score missing (baseline %.1f, current %.1f) — cannot normalize", baseline.HostScore, current.HostScore)}}
	}
	base := map[string]Sample{}
	for _, s := range baseline.Samples {
		base[s.Workload+"/"+s.Variant] = s
	}
	seen := map[string]bool{}
	for _, cur := range current.Samples {
		key := cur.Workload + "/" + cur.Variant
		seen[key] = true
		b, ok := base[key]
		if !ok {
			if !allowNew {
				problems = append(problems, Problem{cur.Workload, cur.Variant,
					"not in baseline — regenerate bench_baseline.json (or gate with -allow-new)"})
			}
			continue
		}
		baseNorm := b.KinstPerSec() / baseline.HostScore
		curNorm := cur.KinstPerSec() / current.HostScore
		if baseNorm > 0 && curNorm < baseNorm*(1-tolerance) {
			problems = append(problems, Problem{cur.Workload, cur.Variant,
				fmt.Sprintf("normalized throughput %.3f is %.0f%% below baseline %.3f (tolerance %.0f%%)",
					curNorm, (1-curNorm/baseNorm)*100, baseNorm, tolerance*100)})
		}
		if cur.AllocsPerInst() > b.AllocsPerInst()+allocSlack {
			problems = append(problems, Problem{cur.Workload, cur.Variant,
				fmt.Sprintf("allocs/instruction rose %.4f → %.4f", b.AllocsPerInst(), cur.AllocsPerInst())})
		}
	}
	for key := range base {
		if !seen[key] {
			s := base[key]
			problems = append(problems, Problem{s.Workload, s.Variant, "present in baseline but not measured"})
		}
	}
	sort.Slice(problems, func(i, j int) bool {
		if problems[i].Workload != problems[j].Workload {
			return problems[i].Workload < problems[j].Workload
		}
		return problems[i].Variant < problems[j].Variant
	})
	return problems
}

// Format renders a report as the human-readable table chexperf and
// chexbench print.
func Format(r *Report) string {
	out := fmt.Sprintf("host score: %.1f kernel-iters/µs\n", r.HostScore)
	out += fmt.Sprintf("%-14s %-12s %12s %12s %10s %8s %8s %8s %8s\n",
		"workload", "variant", "Kinst/s", "norm", "allocs/in", "μop-hit", "sb-built", "sb-chain", "sb-fall")
	for _, s := range r.Samples {
		norm := 0.0
		if r.HostScore > 0 {
			norm = s.KinstPerSec() / r.HostScore
		}
		out += fmt.Sprintf("%-14s %-12s %12.1f %12.4f %10.4f %7.1f%% %8d %8d %8d\n",
			s.Workload, s.Variant, s.KinstPerSec(), norm, s.AllocsPerInst(), s.HitRate*100,
			s.SBBuilt, s.SBChains, s.SBFallbacks)
	}
	return out
}

// MarshalReport renders a Report as the JSON artifact format (committed
// as bench_baseline.json and uploaded as BENCH_*.json in CI).
func MarshalReport(r *Report) ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}

// UnmarshalReport parses a report artifact.
func UnmarshalReport(data []byte) (*Report, error) {
	var r Report
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, err
	}
	return &r, nil
}
