package hostperf

import (
	"strings"
	"testing"

	"chex86/internal/decode"
	"chex86/internal/workload"
)

// fakeClock advances a fixed amount per read, making Measure and
// Calibrate fully deterministic in tests.
func fakeClock(stepNS int64) Clock {
	var t int64
	return func() int64 {
		t += stepNS
		return t
	}
}

func TestSampleMath(t *testing.T) {
	s := Sample{Insts: 100_000, WallNS: 50_000_000, Allocs: 200}
	if got := s.KinstPerSec(); got != 2000 {
		t.Errorf("KinstPerSec = %v, want 2000", got)
	}
	if got := s.AllocsPerInst(); got != 0.002 {
		t.Errorf("AllocsPerInst = %v, want 0.002", got)
	}
	var zero Sample
	if zero.KinstPerSec() != 0 || zero.AllocsPerInst() != 0 {
		t.Error("zero sample must not divide by zero")
	}
}

func TestMeasureRuns(t *testing.T) {
	p := workload.ByName("mcf")
	if p == nil {
		t.Fatal("mcf missing from catalog")
	}
	s, err := Measure(fakeClock(1000), p, decode.VariantMicrocodePrediction, MeasureOpts{Scale: 0.1, MaxInsts: 10_000})
	if err != nil {
		t.Fatal(err)
	}
	if s.Workload != "mcf" || s.Insts == 0 || s.WallNS <= 0 {
		t.Fatalf("implausible sample: %+v", s)
	}
	if s.HitRate <= 0.5 {
		t.Errorf("μop cache hit rate %.3f — expected a hot cache on a loop workload", s.HitRate)
	}
}

func TestCalibrateDeterministicUnderFakeClock(t *testing.T) {
	a := Calibrate(fakeClock(1_000_000))
	b := Calibrate(fakeClock(1_000_000))
	if a != b || a <= 0 {
		t.Fatalf("Calibrate not deterministic under fake clock: %v vs %v", a, b)
	}
}

func mkReport(score float64, samples ...Sample) *Report {
	return &Report{HostScore: score, Samples: samples}
}

func TestCompareGates(t *testing.T) {
	base := mkReport(100,
		Sample{Workload: "mcf", Variant: "prediction", Insts: 1_000_000, WallNS: 1e9, Allocs: 1000})

	t.Run("identical passes", func(t *testing.T) {
		if p := Compare(base, base, 0.20, false); len(p) != 0 {
			t.Fatalf("identical reports must pass, got %v", p)
		}
	})

	t.Run("25% slowdown fails at 20% tolerance", func(t *testing.T) {
		cur := mkReport(100,
			Sample{Workload: "mcf", Variant: "prediction", Insts: 750_000, WallNS: 1e9, Allocs: 750})
		p := Compare(base, cur, 0.20, false)
		if len(p) != 1 || !strings.Contains(p[0].Msg, "below baseline") {
			t.Fatalf("want one throughput problem, got %v", p)
		}
	})

	t.Run("15% slowdown passes at 20% tolerance", func(t *testing.T) {
		cur := mkReport(100,
			Sample{Workload: "mcf", Variant: "prediction", Insts: 850_000, WallNS: 1e9, Allocs: 850})
		if p := Compare(base, cur, 0.20, false); len(p) != 0 {
			t.Fatalf("15%% drop within tolerance must pass, got %v", p)
		}
	})

	t.Run("slower host normalizes away", func(t *testing.T) {
		// Host half as fast, throughput half as high: normalized equal.
		cur := mkReport(50,
			Sample{Workload: "mcf", Variant: "prediction", Insts: 500_000, WallNS: 1e9, Allocs: 500})
		if p := Compare(base, cur, 0.20, false); len(p) != 0 {
			t.Fatalf("host-speed difference must normalize away, got %v", p)
		}
	})

	t.Run("alloc increase fails", func(t *testing.T) {
		cur := mkReport(100,
			Sample{Workload: "mcf", Variant: "prediction", Insts: 1_000_000, WallNS: 1e9, Allocs: 200_000})
		p := Compare(base, cur, 0.20, false)
		if len(p) != 1 || !strings.Contains(p[0].Msg, "allocs/instruction rose") {
			t.Fatalf("want one alloc problem, got %v", p)
		}
	})

	t.Run("missing sample fails", func(t *testing.T) {
		cur := mkReport(100)
		p := Compare(base, cur, 0.20, false)
		if len(p) != 1 || !strings.Contains(p[0].Msg, "not measured") {
			t.Fatalf("want one missing-sample problem, got %v", p)
		}
	})

	t.Run("unknown sample fails", func(t *testing.T) {
		cur := mkReport(100,
			base.Samples[0],
			Sample{Workload: "new", Variant: "prediction", Insts: 1, WallNS: 1, Allocs: 0})
		p := Compare(base, cur, 0.20, false)
		if len(p) != 1 || !strings.Contains(p[0].Msg, "not in baseline") {
			t.Fatalf("want one unknown-sample problem, got %v", p)
		}
	})

	t.Run("allow-new waives only unknown samples", func(t *testing.T) {
		cur := mkReport(100,
			base.Samples[0],
			Sample{Workload: "new", Variant: "prediction", Insts: 1, WallNS: 1, Allocs: 0})
		if p := Compare(base, cur, 0.20, true); len(p) != 0 {
			t.Fatalf("allow-new must pass an unknown benchmark, got %v", p)
		}
		// A vanished benchmark still fails even with allow-new.
		if p := Compare(base, mkReport(100), 0.20, true); len(p) != 1 {
			t.Fatalf("allow-new must not waive missing samples, got %v", p)
		}
	})

	t.Run("missing host score fails closed", func(t *testing.T) {
		if p := Compare(mkReport(0), base, 0.20, false); len(p) == 0 {
			t.Fatal("zero host score must fail the gate, not skip it")
		}
	})
}

func TestReportRoundTrip(t *testing.T) {
	r := mkReport(123.4,
		Sample{Workload: "mcf", Variant: "insecure", Insts: 5, WallNS: 6, Allocs: 7, HitRate: 0.99})
	data, err := MarshalReport(r)
	if err != nil {
		t.Fatal(err)
	}
	got, err := UnmarshalReport(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.HostScore != r.HostScore || len(got.Samples) != 1 || got.Samples[0] != r.Samples[0] {
		t.Fatalf("round trip mismatch: %+v", got)
	}
	if !strings.Contains(Format(got), "mcf") {
		t.Error("Format must mention the workload")
	}
}
