package branch

import (
	"math/rand"
	"testing"
)

func TestBimodalLearnsBias(t *testing.T) {
	p := NewPredictor()
	pc := uint64(0x400100)
	for i := 0; i < 50; i++ {
		p.UpdateDir(pc, true)
	}
	if !p.PredictDir(pc) {
		t.Fatal("always-taken branch must be predicted taken")
	}
	for i := 0; i < 50; i++ {
		p.UpdateDir(pc, false)
	}
	if p.PredictDir(pc) {
		t.Fatal("predictor must re-learn an inverted bias")
	}
}

func TestLoopPredictorCatchesFixedTripCounts(t *testing.T) {
	p := NewPredictor()
	pc := uint64(0x400200)
	mis := 0
	// 40 iterations of a loop taken 7 times then exiting.
	for iter := 0; iter < 40; iter++ {
		for i := 0; i < 8; i++ {
			taken := i < 7
			if p.PredictDir(pc) != taken {
				mis++
			}
			p.UpdateDir(pc, taken)
		}
	}
	// After warm-up the loop predictor must predict the exit exactly.
	if mis > 25 {
		t.Fatalf("loop predictor failed to lock on: %d mispredicts of 320", mis)
	}
	// The last 10 trips must be perfect.
	mis = 0
	for iter := 0; iter < 10; iter++ {
		for i := 0; i < 8; i++ {
			taken := i < 7
			if p.PredictDir(pc) != taken {
				mis++
			}
			p.UpdateDir(pc, taken)
		}
	}
	if mis != 0 {
		t.Fatalf("warmed loop predictor still mispredicts: %d", mis)
	}
}

func TestTAGECatchesHistoryPatterns(t *testing.T) {
	p := NewPredictor()
	pc := uint64(0x400300)
	// Alternating T,N,T,N: pure bimodal fails; history tables must learn.
	mis := 0
	for i := 0; i < 400; i++ {
		taken := i%2 == 0
		if i > 100 && p.PredictDir(pc) != taken {
			mis++
		}
		p.UpdateDir(pc, taken)
	}
	if mis > 30 {
		t.Fatalf("TAGE failed on an alternating pattern: %d/300 mispredicts", mis)
	}
}

func TestRandomBranchesAreHard(t *testing.T) {
	p := NewPredictor()
	rng := rand.New(rand.NewSource(1))
	pc := uint64(0x400400)
	mis := 0
	const n = 2000
	for i := 0; i < n; i++ {
		taken := rng.Intn(2) == 0
		if p.PredictDir(pc) != taken {
			mis++
		}
		p.UpdateDir(pc, taken)
	}
	if float64(mis)/n < 0.3 {
		t.Fatalf("a fair coin cannot be predicted with %d/%d misses", mis, n)
	}
}

func TestBTB(t *testing.T) {
	b := NewBTB(64)
	if _, ok := b.Lookup(0x400500); ok {
		t.Fatal("cold BTB cannot hit")
	}
	b.Update(0x400500, 0x400800)
	if tgt, ok := b.Lookup(0x400500); !ok || tgt != 0x400800 {
		t.Fatal("BTB lost the target")
	}
	// A conflicting branch at the same index evicts.
	b.Update(0x400500+64*4, 0x400900)
	if _, ok := b.Lookup(0x400500); ok {
		t.Fatal("direct-mapped conflict must evict")
	}
}

func TestRASBalancedCalls(t *testing.T) {
	r := NewRAS(8)
	for i := uint64(1); i <= 5; i++ {
		r.Push(0x1000 + i)
	}
	for i := uint64(5); i >= 1; i-- {
		if got := r.Pop(); got != 0x1000+i {
			t.Fatalf("RAS pop %#x, want %#x", got, 0x1000+i)
		}
	}
	if r.Pop() != 0 {
		t.Fatal("empty RAS must return 0")
	}
}

func TestRASOverflowWraps(t *testing.T) {
	r := NewRAS(4)
	for i := uint64(1); i <= 6; i++ {
		r.Push(i)
	}
	// The two oldest entries were overwritten; the newest 4 survive.
	for i := uint64(6); i >= 3; i-- {
		if got := r.Pop(); got != i {
			t.Fatalf("wrapped RAS pop %d, want %d", got, i)
		}
	}
}

func TestUnitPredictResolve(t *testing.T) {
	u := NewUnit()
	pc, next, target := uint64(0x400600), uint64(0x400604), uint64(0x400700)

	// A call trains the BTB and pushes the RAS.
	_, _ = u.Predict(KindCall, pc, next)
	u.Resolve(KindCall, pc, next, true, 0, true, target)
	if tk, tgt := u.Predict(KindCall, pc, next); !tk || tgt != target {
		t.Fatal("trained call not predicted")
	}
	u.Resolve(KindCall, pc, next, true, target, true, target)

	// Two returns must pop the two pushed addresses in LIFO order.
	if _, tgt := u.Predict(KindRet, 0x400700, 0); tgt != next {
		t.Fatalf("RAS should predict the call's return address, got %#x", tgt)
	}
	mis := u.Resolve(KindRet, 0x400700, 0, true, next, true, next)
	if mis {
		t.Fatal("matching return misflagged")
	}

	// A conditional mispredict is reported.
	taken, tgt := u.Predict(KindCond, 0x400800, 0x400804)
	mis = u.Resolve(KindCond, 0x400800, 0x400804, taken, tgt, !taken, 0x400900)
	if !mis {
		t.Fatal("direction flip must be a mispredict")
	}
	if u.Dir.Stats.Mispredicts() == 0 {
		t.Fatal("stats must count the mispredict")
	}
}
