// Package branch implements the front-end branch prediction structures of
// the simulated machine (Table III): an LTAGE-class direction predictor
// (bimodal base + geometric-history tagged tables), a 4096-entry BTB, and
// a 64-entry return address stack.
package branch

// Stats aggregates predictor behavior.
type Stats struct {
	Lookups     uint64
	DirMispred  uint64 // conditional direction mispredictions
	TargMispred uint64 // target mispredictions (BTB/RAS)
}

// Mispredicts returns total mispredictions of either kind.
func (s *Stats) Mispredicts() uint64 { return s.DirMispred + s.TargMispred }

// MispredictRate returns mispredictions per lookup.
func (s *Stats) MispredictRate() float64 {
	if s.Lookups == 0 {
		return 0
	}
	return float64(s.Mispredicts()) / float64(s.Lookups)
}

const (
	numTagged   = 4
	baseBits    = 13 // 8K-entry bimodal
	taggedBits  = 10 // 1K entries per tagged table
	tagBits     = 11
	maxHistBits = 64
)

var histLens = [numTagged]uint{8, 16, 32, 64}

type taggedEntry struct {
	tag    uint32
	ctr    int8 // -4..3 signed counter; >=0 predicts taken
	useful uint8
}

// loopEntry tracks one branch's loop behavior (the loop predictor that
// makes LTAGE "L-TAGE"): fixed-trip-count loops are predicted exactly.
type loopEntry struct {
	tag   uint32
	trip  uint32 // learned taken-run length before the not-taken exit
	cur   uint32 // current taken-run length
	conf  uint8
	valid bool
}

// Predictor is the LTAGE-class direction predictor: a bimodal base, four
// geometric-history tagged tables, and a loop predictor.
type Predictor struct {
	base   []uint8 // 2-bit counters
	tables [numTagged][]taggedEntry
	loops  []loopEntry
	ghist  uint64 // global history (newest bit = LSB)
	Stats  Stats
}

// NewPredictor returns an initialized predictor.
func NewPredictor() *Predictor {
	p := &Predictor{base: make([]uint8, 1<<baseBits), loops: make([]loopEntry, 512)}
	for i := range p.base {
		p.base[i] = 1 // weakly not-taken
	}
	for t := 0; t < numTagged; t++ {
		p.tables[t] = make([]taggedEntry, 1<<taggedBits)
	}
	return p
}

func (p *Predictor) loopIndex(pc uint64) (int, uint32) {
	h := pc >> 2
	return int(h % uint64(len(p.loops))), uint32(h & 0x3FFFFF)
}

// loopPredict returns (prediction, usable) from the loop predictor.
func (p *Predictor) loopPredict(pc uint64) (bool, bool) {
	i, tag := p.loopIndex(pc)
	e := &p.loops[i]
	if !e.valid || e.tag != tag || e.conf < 2 || e.trip == 0 {
		return false, false
	}
	// Predict taken until the learned trip count is reached.
	return e.cur+1 < e.trip+1 && e.cur < e.trip, true
}

func (p *Predictor) loopTrain(pc uint64, taken bool) {
	i, tag := p.loopIndex(pc)
	e := &p.loops[i]
	if !e.valid || e.tag != tag {
		*e = loopEntry{tag: tag, valid: true}
	}
	if taken {
		e.cur++
		if e.cur > 1<<20 { // runaway: not a loop exit branch
			e.conf = 0
			e.cur = 0
		}
		return
	}
	if e.cur == e.trip && e.trip > 0 {
		if e.conf < 3 {
			e.conf++
		}
	} else {
		e.trip = e.cur
		e.conf = 0
	}
	e.cur = 0
}

func foldHistory(h uint64, bits uint, out uint) uint32 {
	var v uint32
	mask := uint64(1)<<bits - 1
	h &= mask
	for i := uint(0); i < bits; i += out {
		v ^= uint32(h & (1<<out - 1))
		h >>= out
	}
	return v
}

func (p *Predictor) indexTag(pc uint64, t int) (idx uint32, tag uint32) {
	hl := histLens[t]
	fidx := foldHistory(p.ghist, hl, taggedBits)
	ftag := foldHistory(p.ghist, hl, tagBits)
	idx = (uint32(pc>>2) ^ fidx ^ uint32(pc>>(taggedBits+2))) & (1<<taggedBits - 1)
	tag = (uint32(pc>>2) ^ ftag<<1) & (1<<tagBits - 1)
	return
}

// PredictDir predicts the direction of the conditional branch at pc.
func (p *Predictor) PredictDir(pc uint64) bool {
	if pred, ok := p.loopPredict(pc); ok {
		return pred
	}
	for t := numTagged - 1; t >= 0; t-- {
		idx, tag := p.indexTag(pc, t)
		e := &p.tables[t][idx]
		if e.tag == tag && e.useful > 0 {
			return e.ctr >= 0
		}
	}
	return p.base[(pc>>2)&(1<<baseBits-1)] >= 2
}

// UpdateDir trains the predictor with the branch's actual direction.
func (p *Predictor) UpdateDir(pc uint64, taken bool) {
	predicted := p.PredictDir(pc)
	p.loopTrain(pc, taken)
	// Update the providing tagged entry or the bimodal table.
	provided := false
	for t := numTagged - 1; t >= 0; t-- {
		idx, tag := p.indexTag(pc, t)
		e := &p.tables[t][idx]
		if e.tag == tag && e.useful > 0 {
			if taken && e.ctr < 3 {
				e.ctr++
			} else if !taken && e.ctr > -4 {
				e.ctr--
			}
			if (e.ctr >= 0) == taken && e.useful < 3 {
				e.useful++
			}
			provided = true
			break
		}
	}
	bi := (pc >> 2) & (1<<baseBits - 1)
	if taken && p.base[bi] < 3 {
		p.base[bi]++
	} else if !taken && p.base[bi] > 0 {
		p.base[bi]--
	}
	// On a misprediction, allocate into a longer-history table.
	if predicted != taken && !provided {
		for t := 0; t < numTagged; t++ {
			idx, tag := p.indexTag(pc, t)
			e := &p.tables[t][idx]
			if e.useful == 0 {
				e.tag = tag
				e.useful = 1
				if taken {
					e.ctr = 0
				} else {
					e.ctr = -1
				}
				break
			}
			e.useful--
		}
	}
	p.ghist = p.ghist<<1 | b2u(taken)
}

func b2u(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

// BTB is the branch target buffer.
type BTB struct {
	entries int
	tags    []uint64
	targets []uint64
}

// NewBTB returns a direct-mapped BTB with the given entry count.
func NewBTB(entries int) *BTB {
	return &BTB{entries: entries, tags: make([]uint64, entries), targets: make([]uint64, entries)}
}

// Lookup returns the predicted target for pc and whether the BTB hit.
func (b *BTB) Lookup(pc uint64) (uint64, bool) {
	i := (pc >> 2) % uint64(b.entries)
	if b.tags[i] == pc && pc != 0 {
		return b.targets[i], true
	}
	return 0, false
}

// Update records the actual target of the branch at pc.
func (b *BTB) Update(pc, target uint64) {
	i := (pc >> 2) % uint64(b.entries)
	b.tags[i] = pc
	b.targets[i] = target
}

// RAS is the return address stack.
type RAS struct {
	stack []uint64
	top   int
	depth int
}

// NewRAS returns a RAS of the given depth.
func NewRAS(depth int) *RAS {
	return &RAS{stack: make([]uint64, depth), depth: depth}
}

// Push records a call's return address.
func (r *RAS) Push(addr uint64) {
	r.stack[r.top%r.depth] = addr
	r.top++
}

// Pop predicts the target of a return.
func (r *RAS) Pop() uint64 {
	if r.top == 0 {
		return 0
	}
	r.top--
	return r.stack[r.top%r.depth]
}

// Unit bundles the front-end prediction structures with a unified
// predict/train interface over trace records.
type Unit struct {
	Dir *Predictor
	Btb *BTB
	Ras *RAS
}

// NewUnit returns a Table III-configured branch unit (LTAGE, 4096-entry
// BTB, 64-entry RAS).
func NewUnit() *Unit {
	return &Unit{Dir: NewPredictor(), Btb: NewBTB(4096), Ras: NewRAS(64)}
}

// Kind classifies a branch for prediction purposes.
type Kind uint8

const (
	KindCond Kind = iota
	KindDirect
	KindIndirect
	KindCall
	KindIndirectCall
	KindRet
)

// Predict returns the predicted (taken, target) for a branch of the given
// kind at pc whose fall-through is next.
func (u *Unit) Predict(kind Kind, pc, next uint64) (bool, uint64) {
	u.Dir.Stats.Lookups++
	switch kind {
	case KindCond:
		if u.Dir.PredictDir(pc) {
			if t, ok := u.Btb.Lookup(pc); ok {
				return true, t
			}
			return true, 0 // predicted taken, unknown target
		}
		return false, next
	case KindDirect, KindCall:
		t, ok := u.Btb.Lookup(pc)
		if !ok {
			return true, 0
		}
		return true, t
	case KindIndirect, KindIndirectCall:
		t, ok := u.Btb.Lookup(pc)
		if !ok {
			return true, 0
		}
		return true, t
	case KindRet:
		return true, u.Ras.Pop()
	}
	return false, next
}

// Resolve trains the predictor with the actual outcome and reports whether
// the earlier prediction was a misprediction.
func (u *Unit) Resolve(kind Kind, pc, next uint64, predTaken bool, predTarget uint64, taken bool, target uint64) bool {
	mis := false
	switch kind {
	case KindCond:
		u.Dir.UpdateDir(pc, taken)
		if predTaken != taken {
			u.Dir.Stats.DirMispred++
			mis = true
		} else if taken && predTarget != target {
			u.Dir.Stats.TargMispred++
			mis = true
		}
		if taken {
			u.Btb.Update(pc, target)
		}
	case KindCall, KindIndirectCall:
		u.Ras.Push(next)
		u.Btb.Update(pc, target)
		if predTarget != target {
			u.Dir.Stats.TargMispred++
			mis = true
		}
	case KindDirect, KindIndirect:
		u.Btb.Update(pc, target)
		if predTarget != target {
			u.Dir.Stats.TargMispred++
			mis = true
		}
	case KindRet:
		if predTarget != target {
			u.Dir.Stats.TargMispred++
			mis = true
		}
	}
	return mis
}
