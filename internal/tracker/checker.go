package tracker

import (
	"fmt"

	"chex86/internal/core"
	"chex86/internal/emu"
	"chex86/internal/isa"
)

// Mismatch records one disagreement between the rule-based tracker and the
// ground truth, for rule-database refinement.
type Mismatch struct {
	RIP     uint64
	Inst    string
	Tracked core.PID
	Actual  core.PID
	Value   uint64
}

// String renders the mismatch like the checker's diagnostic dump.
func (m Mismatch) String() string {
	return fmt.Sprintf("rip=%#x %-24s tracked=PID(%d) actual=PID(%d) value=%#x",
		m.RIP, m.Inst, m.Tracked, m.Actual, m.Value)
}

// CheckerStats aggregates hardware-checker activity.
type CheckerStats struct {
	Validations uint64
	Matches     uint64
	Mismatches  uint64
}

// MismatchRate returns mismatches per validation.
func (s *CheckerStats) MismatchRate() float64 {
	if s.Validations == 0 {
		return 0
	}
	return float64(s.Mismatches) / float64(s.Validations)
}

// Checker is the hardware checker co-processor of Section V-A: for every
// instruction producing a register result, it exhaustively searches the
// ground-truth allocation map to determine whether the result is an
// address inside a tracked block, and validates the tracker's predicted
// PID against that oracle. Disagreements are dumped for rule-database
// refinement — this is the offline profiling loop that constructed
// Table I.
type Checker struct {
	Truth *emu.Truth
	Tags  *RegTags
	Stats CheckerStats

	// Log holds the first LogCap mismatches with execution state.
	Log    []Mismatch
	LogCap int
}

// NewChecker returns a checker validating the tracker's tags against the
// ground truth.
func NewChecker(truth *emu.Truth, tags *RegTags) *Checker {
	return &Checker{Truth: truth, Tags: tags, LogCap: 64}
}

// Validate checks the committed record's register result, if it has one,
// against the ground truth. Returns true when the tracked PID agrees with
// the oracle.
func (c *Checker) Validate(rec *emu.Rec) bool {
	if !rec.HasVal || rec.Inst == nil {
		return true
	}
	dst := rec.Inst.Dst
	if dst.Kind != isa.OpReg {
		return true
	}
	c.Stats.Validations++
	tracked := c.Tags.Current(dst.Reg)

	var actual core.PID
	if span := c.Truth.Find(rec.Val); span != nil {
		actual = span.PID
	}

	ok := tracked == actual
	if !ok {
		// A wild tag (PID -1) on a value that is not a tracked address is
		// deliberate conservatism, not a rule failure; likewise a zero tag
		// for a value that merely falls numerically inside a block the
		// program never derived a pointer to is an integer-provenance
		// coincidence the paper explicitly leaves to the compiler.
		if tracked == core.WildPID && actual == 0 {
			ok = true
		}
	}
	if ok {
		c.Stats.Matches++
		return true
	}
	c.Stats.Mismatches++
	if len(c.Log) < c.LogCap {
		c.Log = append(c.Log, Mismatch{
			RIP:     rec.Inst.Addr,
			Inst:    rec.Inst.String(),
			Tracked: tracked,
			Actual:  actual,
			Value:   rec.Val,
		})
	}
	return false
}
