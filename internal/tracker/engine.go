package tracker

import (
	"chex86/internal/core"
	"chex86/internal/isa"
)

// EngineStats aggregates rule-engine activity.
type EngineStats struct {
	UopsSeen       uint64
	RulesApplied   uint64
	SpilledAliases uint64 // stores that recorded a spilled pointer alias
	AliasClears    uint64 // stores that overwrote an alias with a non-pointer
	PointerReloads uint64 // loads that resolved to a non-zero PID
}

// Engine is the rule-based pointer tracker: it applies the rule database
// to the decoded micro-op stream in the front-end, maintains per-register
// PID tags, and drives the alias detection machinery for loads and stores.
type Engine struct {
	DB      *RuleDB
	Tags    *RegTags
	Aliases *AliasTable
	Pred    *AliasPredictor
	SB      *StoreBuffer
	Stats   EngineStats

	// ReloadHook, when set, observes every pointer reload (a load whose
	// effective address resolved to a non-zero spilled-alias PID) — the
	// probe used to collect the temporal pointer access patterns of
	// Table II.
	ReloadHook func(pc uint64, pid core.PID)
}

// NewEngine assembles a tracker engine from its components.
func NewEngine(db *RuleDB, aliases *AliasTable, pred *AliasPredictor) *Engine {
	return &Engine{DB: db, Tags: NewRegTags(), Aliases: aliases, Pred: pred,
		SB: NewStoreBuffer(56)}
}

// ApplyRegRule processes a non-memory micro-op in program order, applying
// the first matching rule from the database (or the default PID(result) <-
// PID(0)). It returns the PID propagated to the destination register.
func (e *Engine) ApplyRegRule(seq uint64, u *isa.Uop) core.PID {
	e.Stats.UopsSeen++
	if !u.Dst.Valid() || u.Dst == isa.FLAGS {
		return 0
	}
	r := e.DB.Match(u)
	if r == nil || r.Propagate == nil {
		// Default rule: all other operations clear the destination tag.
		e.Tags.Propagate(seq, u.Dst, 0)
		return 0
	}
	e.Stats.RulesApplied++
	src1 := e.Tags.Current(u.Src1)
	var src2 core.PID
	if !u.HasImm && u.Src2.Valid() {
		src2 = e.Tags.Current(u.Src2)
	}
	if u.Type == isa.ULea {
		// LEA propagates from the addressing-mode base (and index for
		// base-less scaled forms).
		src1 = e.Tags.Current(u.Mem.Base)
		src2 = e.Tags.Current(u.Mem.Index)
	}
	pid := r.Propagate(src1, src2)
	e.Tags.Propagate(seq, u.Dst, pid)
	return pid
}

// DerefSelect is the dereference-capability selection rule: the base
// register's PID, falling back to the index register when the base is
// untagged. It is exported separately from the engine so the static
// proof checker (internal/elide) can validate its own abstraction of
// the selection against the exact semantics the pipeline runs.
func DerefSelect(base, index core.PID) core.PID {
	if base == 0 {
		return index
	}
	return base
}

// DerefPID returns the PID associated with the base register of a memory
// micro-op's addressing mode — the capability the dereference must be
// checked against.
func (e *Engine) DerefPID(u *isa.Uop) core.PID {
	return DerefSelect(e.Tags.Current(u.Mem.Base), e.Tags.Current(u.Mem.Index))
}

// PredictLoad returns the pointer-reload predictor's PID prediction for
// the load at pc (Figure 4), consulted at decode time.
func (e *Engine) PredictLoad(pc uint64) core.PID {
	return e.Pred.Predict(pc)
}

// LoadResolution is the outcome of resolving a load's predicted PID
// against the shadow alias table at execute.
type LoadResolution struct {
	Predicted core.PID
	Actual    core.PID
	Outcome   Outcome
}

// ResolveLoad resolves the load at pc with effective address ea: it looks
// up the shadow alias table for the actual spilled-alias PID, trains the
// predictor, classifies the outcome, and propagates the actual PID to the
// destination register (the forward/fix-up paths of Figure 5).
func (e *Engine) ResolveLoad(seq, pc, ea uint64, dst isa.Reg, predicted core.PID) LoadResolution {
	e.Stats.UopsSeen++
	// In-flight stores forward their PIDs from the store buffer before the
	// shadow alias table is consulted (store-to-load forwarding).
	actual, forwarded := e.SB.Forward(ea)
	if !forwarded {
		actual = e.Aliases.Lookup(ea)
	}
	if actual != 0 {
		e.Stats.PointerReloads++
		if e.ReloadHook != nil {
			e.ReloadHook(pc, actual)
		}
	}
	out := e.Pred.Resolve(pc, predicted, actual)
	if dst.Valid() {
		e.Tags.Propagate(seq, dst, actual)
	}
	return LoadResolution{Predicted: predicted, Actual: actual, Outcome: out}
}

// StoreAlias processes a store in the front-end: if the stored register
// carries a non-zero PID, the store buffer records the spilled alias; a
// non-pointer store over a live alias records a clear. Effects reach the
// shadow alias table only when CommitThrough drains the buffer. It returns
// the PID recorded (0 for clears) and whether an alias effect was queued.
func (e *Engine) StoreAlias(seq, ea uint64, src isa.Reg) (core.PID, bool) {
	e.Stats.UopsSeen++
	pid := e.Tags.Current(src)
	if pid != 0 && pid != core.WildPID {
		e.SB.Insert(seq, ea, pid, false)
		e.Stats.SpilledAliases++
		return pid, true
	}
	prior, forwarded := e.SB.Forward(ea)
	if !forwarded {
		prior = e.Aliases.Lookup(ea)
	}
	if prior != 0 {
		e.SB.Insert(seq, ea, 0, true)
		e.Stats.AliasClears++
		return 0, true
	}
	return 0, false
}

// CommitThrough retires the tracker state for all instructions with
// sequence numbers at or below seq: committed transient register tags
// become architectural and the store buffer drains into the shadow alias
// table.
func (e *Engine) CommitThrough(seq uint64) {
	e.Tags.Commit(seq)
	e.SB.DrainCommitted(seq, e.Aliases)
}

// SquashAfter discards all transient tracker state younger than seq
// (misspeculation recovery across both tag planes).
func (e *Engine) SquashAfter(seq uint64) {
	e.Tags.Squash(seq)
	e.SB.Squash(seq)
}

// SetReg force-sets a register's PID tag (used by the capability transfer
// at allocator exit: the return-value register %rax receives the freshly
// generated capability's PID).
func (e *Engine) SetReg(seq uint64, r isa.Reg, pid core.PID) {
	e.Tags.Propagate(seq, r, pid)
}
