package tracker

import (
	"chex86/internal/core"
)

// StoreBuffer holds the PIDs of in-flight pointer-spilling stores until
// they commit (Section V-C: "for transient stores that may spill pointers
// to memory, we extend the store buffer to hold their corresponding PIDs,
// until the time they commit"). Loads snoop it youngest-first for
// store-to-load forwarding of alias PIDs; only committed entries drain
// into the shadow alias table, so wrong-path stores never pollute it.
type sbEntry struct {
	seq  uint64
	addr uint64 // 8-byte aligned
	pid  core.PID
	// clear marks a non-pointer store overwriting a potential alias: on
	// commit it removes the alias-table entry.
	clear bool
}

// StoreBuffer is ordered oldest-first.
type StoreBuffer struct {
	entries []sbEntry

	// Capacity mirrors the machine's store-queue depth; inserts beyond it
	// indicate a modeling bug upstream (the SQ occupancy ring gates
	// dispatch) and are still accepted, growth-bounded by the caller.
	Capacity int

	Stats struct {
		Inserts  uint64
		Forwards uint64
		Squashed uint64
		Drained  uint64
	}
}

// NewStoreBuffer returns a buffer sized to the store queue.
func NewStoreBuffer(capacity int) *StoreBuffer {
	return &StoreBuffer{Capacity: capacity}
}

// Insert records an in-flight store's alias effect.
func (sb *StoreBuffer) Insert(seq, addr uint64, pid core.PID, clear bool) {
	sb.Stats.Inserts++
	sb.entries = append(sb.entries, sbEntry{seq: seq, addr: addr &^ 7, pid: pid, clear: clear})
}

// Forward snoops the buffer youngest-first for an in-flight store to addr,
// returning its PID and true on a hit (a clearing store forwards PID 0).
func (sb *StoreBuffer) Forward(addr uint64) (core.PID, bool) {
	addr &^= 7
	for i := len(sb.entries) - 1; i >= 0; i-- {
		if sb.entries[i].addr == addr {
			sb.Stats.Forwards++
			if sb.entries[i].clear {
				return 0, true
			}
			return sb.entries[i].pid, true
		}
	}
	return 0, false
}

// Squash discards entries younger than seq (mispredict recovery): their
// stores never commit, so their alias effects must never reach the shadow
// table.
func (sb *StoreBuffer) Squash(seq uint64) {
	n := len(sb.entries)
	for n > 0 && sb.entries[n-1].seq > seq {
		n--
		sb.Stats.Squashed++
	}
	sb.entries = sb.entries[:n]
}

// DrainCommitted applies all entries with sequence numbers at or below seq
// to the shadow alias table and removes them from the buffer.
func (sb *StoreBuffer) DrainCommitted(seq uint64, table *AliasTable) {
	i := 0
	for i < len(sb.entries) && sb.entries[i].seq <= seq {
		e := &sb.entries[i]
		if e.clear {
			table.Set(e.addr, 0)
		} else {
			table.Set(e.addr, e.pid)
		}
		sb.Stats.Drained++
		i++
	}
	sb.entries = sb.entries[:copy(sb.entries, sb.entries[i:])]
}

// Len returns the number of in-flight entries.
func (sb *StoreBuffer) Len() int { return len(sb.entries) }
