package tracker

import (
	"chex86/internal/cache"
	"chex86/internal/core"
	"chex86/internal/mem"
)

// AliasTable is the 5-level hierarchical shadow alias table (Section V-C):
// for every 8-byte-aligned virtual address hosting a spilled pointer alias,
// the lowest-level entry holds the PID of the spilled pointer. The table
// lives in the privileged shadow half; leaf pages are materialized into
// shadow memory so footprint appears in the Figure 9 accounting.
type AliasTable struct {
	entries map[uint64]core.PID
	m       *mem.Memory
	pt      *mem.PageTable

	// shadowPageOf maps a user page hosting aliases to its materialized
	// leaf shadow page. memoPage/memoLeaf cache the last mapping looked
	// up: spill traffic clusters on a few stack/heap pages, and leaf
	// pages are never unmapped, so the memo only ever goes stale by
	// being replaced.
	shadowPageOf map[uint64]uint64
	memoPage     uint64
	memoLeaf     uint64 // 0 = memo empty
	nextLeaf     uint64

	// WalkLevels is the number of table levels a hardware walk traverses
	// on an alias-cache miss. The hardware walker caches the upper levels
	// (as page walkers do), so of the 5 levels only the lowest ones are
	// charged.
	WalkLevels int

	Walks uint64 // hardware walker invocations
}

// NewAliasTable returns an empty alias table materialized into m with
// alias-hosting bits maintained in pt.
func NewAliasTable(m *mem.Memory, pt *mem.PageTable) *AliasTable {
	return &AliasTable{
		entries:      make(map[uint64]core.PID),
		m:            m,
		pt:           pt,
		shadowPageOf: make(map[uint64]uint64),
		nextLeaf:     mem.AliasBase,
		WalkLevels:   2,
	}
}

func alignDown8(a uint64) uint64 { return a &^ 7 }

// leafPage returns the materialized leaf shadow page for userPage through
// the one-entry memo.
func (t *AliasTable) leafPage(userPage uint64) (uint64, bool) {
	if t.memoLeaf != 0 && t.memoPage == userPage {
		return t.memoLeaf, true
	}
	leaf, ok := t.shadowPageOf[userPage]
	if ok {
		t.memoPage, t.memoLeaf = userPage, leaf
	}
	return leaf, ok
}

// Set records that the 8-byte word at addr holds a spilled pointer with
// the given PID (pid 0 clears the entry). It maintains the page table's
// alias-hosting bit and the leaf shadow page.
func (t *AliasTable) Set(addr uint64, pid core.PID) {
	addr = alignDown8(addr)
	if pid == 0 {
		delete(t.entries, addr)
		return
	}
	t.entries[addr] = pid
	userPage := mem.PageBase(addr)
	if t.pt != nil {
		t.pt.SetAliasHosting(userPage, true)
	}
	if t.m != nil {
		leaf, ok := t.leafPage(userPage)
		if !ok {
			leaf = t.nextLeaf
			t.nextLeaf += mem.PageSize
			t.shadowPageOf[userPage] = leaf
			t.memoPage, t.memoLeaf = userPage, leaf
		}
		off := (addr - userPage) / 8 * 8
		t.m.WriteU64(leaf+off, uint64(pid))
	}
}

// LeafAddr returns the shadow address of the alias-table leaf entry for
// addr, or 0 if no leaf page exists for its user page yet.
func (t *AliasTable) LeafAddr(addr uint64) uint64 {
	addr = alignDown8(addr)
	userPage := mem.PageBase(addr)
	leaf, ok := t.leafPage(userPage)
	if !ok {
		return 0
	}
	return leaf + (addr-userPage)/8*8
}

// Lookup returns the PID recorded for the word at addr (0 if none).
func (t *AliasTable) Lookup(addr uint64) core.PID {
	return t.entries[alignDown8(addr)]
}

// Walk performs a hardware table walk for addr, returning the PID and the
// shadow addresses the walker touches (for hierarchy-latency charging).
func (t *AliasTable) Walk(addr uint64) (core.PID, []uint64) {
	return t.WalkInto(addr, nil)
}

// WalkInto is Walk with a caller-provided scratch buffer for the touched
// shadow addresses: the result is appended to buf (pass buf[:0] to reuse
// its backing array), so steady-state callers perform no allocation. The
// returned slice is only valid until the caller's next WalkInto with the
// same buffer.
func (t *AliasTable) WalkInto(addr uint64, buf []uint64) (core.PID, []uint64) {
	t.Walks++
	addr = alignDown8(addr)
	userPage := mem.PageBase(addr)
	leaf, ok := t.leafPage(userPage)
	if !ok {
		leaf = mem.AliasBase // a walk that terminates early at a non-present level
	}
	for l := 0; l < t.WalkLevels; l++ {
		buf = append(buf, leaf+uint64(l)*8)
	}
	return t.entries[addr], buf
}

// Entries returns the number of live alias entries.
func (t *AliasTable) Entries() int { return len(t.entries) }

// FootprintBytes returns the shadow memory consumed by materialized leaf
// pages.
func (t *AliasTable) FootprintBytes() uint64 {
	return uint64(len(t.shadowPageOf)) * mem.PageSize
}

// NewAliasCache returns the in-processor alias cache: 2-way set-associative
// with the given entry count, augmented by a fully-associative victim cache
// (256+32 entries in the default CHEx86 design), keyed by the spilled
// pointer's 8-byte-aligned address.
func NewAliasCache(entries, victim int) *cache.KeyCache {
	return cache.NewKeyCache("alias", entries, 2, victim)
}

// predEntry is one pointer-reload predictor entry (Figure 4).
type predEntry struct {
	tag    uint32
	pid    core.PID
	stride int64 // committed stride
	last   int64 // most recent observed delta (2-delta confirmation)
	bias   uint8 // 2-bit saturating confidence
}

// PredictorStats aggregates pointer-reload prediction behavior.
type PredictorStats struct {
	Lookups     uint64
	Predictions uint64 // non-zero PID predictions issued
	Correct     uint64
	PNA0        uint64 // predicted pointer, actually not tracked (Fig. 5c)
	P0AN        uint64 // predicted untracked, actually a pointer (Fig. 5d)
	PMAN        uint64 // predicted wrong pointer (Fig. 5e)
	Blacklisted uint64 // lookups filtered by the blacklist
}

// Mispredictions returns the total mispredicted pointer reloads.
func (s *PredictorStats) Mispredictions() uint64 { return s.PNA0 + s.P0AN + s.PMAN }

// MispredictionRate returns mispredictions over all predictor lookups that
// were resolved (excluding blacklist-filtered ones).
func (s *PredictorStats) MispredictionRate() float64 {
	resolved := s.Correct + s.Mispredictions()
	if resolved == 0 {
		return 0
	}
	return float64(s.Mispredictions()) / float64(resolved)
}

// AliasPredictor is the stride-based pointer-reload predictor of Figure 4:
// a PC-indexed table of (tag, PID, stride, 2-bit bias) entries plus a
// blacklist of non-pointer-reload loads to avoid destructive aliasing.
type AliasPredictor struct {
	entries []predEntry
	// blacklist is a direct-mapped table of 2-bit counters; a saturated
	// counter filters the load from prediction.
	blacklist []uint8
	blTags    []uint32
	Stats     PredictorStats
}

// NewAliasPredictor returns a predictor with the given entry count (512 in
// the default CHEx86 design).
func NewAliasPredictor(entries int) *AliasPredictor {
	return &AliasPredictor{
		entries:   make([]predEntry, entries),
		blacklist: make([]uint8, 1024),
		blTags:    make([]uint32, 1024),
	}
}

func (p *AliasPredictor) index(pc uint64) (int, uint32) {
	h := pc >> 2
	return int(h % uint64(len(p.entries))), uint32(h / uint64(len(p.entries)) & 0xFFFF)
}

func (p *AliasPredictor) blIndex(pc uint64) (int, uint32) {
	h := pc >> 2
	return int(h % uint64(len(p.blacklist))), uint32(h & 0xFFFFFFFF)
}

// LiveEntries returns the number of trained (non-zero-PID) predictor
// entries.
func (p *AliasPredictor) LiveEntries() int {
	n := 0
	for i := range p.entries {
		if p.entries[i].pid != 0 {
			n++
		}
	}
	return n
}

// CorruptNth corrupts the n-th trained entry (index order, n taken modulo
// the trained count): its PID and stride are perturbed as if the storage
// cell flipped — the fault-injection hook for the pointer-reload
// predictor. Prediction output is advisory (ResolveLoad always propagates
// the actual PID from the shadow alias table), so a corrupted entry costs
// mispredictions, never correctness. It returns the corrupted entry's PC
// tag slot index and whether any trained entry existed.
func (p *AliasPredictor) CorruptNth(n int) (int, bool) {
	total := p.LiveEntries()
	if total == 0 {
		return 0, false
	}
	n %= total
	for i := range p.entries {
		if p.entries[i].pid == 0 {
			continue
		}
		if n == 0 {
			e := &p.entries[i]
			e.pid ^= 0x2A
			if e.pid <= 0 {
				e.pid = 1
			}
			e.stride = -e.stride + 1
			e.bias = 3 // high confidence in garbage: worst case for timing
			return i, true
		}
		n--
	}
	return 0, false
}

// Predict returns the predicted PID for the load at pc (0 = not a pointer
// reload). Blacklisted loads always predict 0.
func (p *AliasPredictor) Predict(pc uint64) core.PID {
	p.Stats.Lookups++
	bi, bt := p.blIndex(pc)
	if p.blTags[bi] == bt && p.blacklist[bi] >= 2 {
		p.Stats.Blacklisted++
		return 0
	}
	i, tag := p.index(pc)
	e := &p.entries[i]
	if e.tag != tag || e.pid == 0 {
		return 0
	}
	p.Stats.Predictions++
	if e.bias < 2 {
		// Low confidence in the stride: fall back to the last observed
		// PID. A wrong non-zero prediction recovers through the cheap
		// forwarding path (PMAN), whereas predicting "not a reload" for
		// an actual reload forces a pipeline flush (P0AN).
		return e.pid
	}
	next := e.pid + e.stride
	if next <= 0 {
		next = e.pid
	}
	return next
}

// Resolve trains the predictor with the actual PID observed at execute and
// classifies the outcome, returning the misprediction class (or OutcomeOK).
func (p *AliasPredictor) Resolve(pc uint64, predicted, actual core.PID) Outcome {
	// Blacklist training: loads that keep resolving to non-pointers get
	// filtered; a pointer reload rescinds the blacklisting.
	bi, bt := p.blIndex(pc)
	if actual == 0 {
		if p.blTags[bi] == bt {
			if p.blacklist[bi] < 3 {
				p.blacklist[bi]++
			}
		} else {
			p.blTags[bi] = bt
			p.blacklist[bi] = 1
		}
	} else if p.blTags[bi] == bt && p.blacklist[bi] > 0 {
		p.blacklist[bi] = 0
	}

	// Stride training (2-delta): the committed stride changes only when
	// the same new delta is observed twice in a row, so periodic wrap-
	// arounds (a buffer table revisited from its start) and batch
	// boundaries are tolerated as one-offs instead of destroying the
	// learned stride.
	if actual != 0 {
		i, tag := p.index(pc)
		e := &p.entries[i]
		if e.tag == tag && e.pid != 0 {
			stride := actual - e.pid
			switch {
			case stride == e.stride:
				if e.bias < 3 {
					e.bias++
				}
			case stride == e.last:
				e.stride = stride
				e.bias = 2
			default:
				if e.bias > 0 {
					e.bias--
				}
			}
			e.last = stride
			e.pid = actual
		} else {
			*e = predEntry{tag: tag, pid: actual, stride: 0, bias: 1}
		}
	}

	switch {
	case predicted == actual:
		if predicted != 0 {
			p.Stats.Correct++
		}
		return OutcomeOK
	case predicted != 0 && actual == 0:
		p.Stats.PNA0++
		return OutcomePNA0
	case predicted == 0 && actual != 0:
		p.Stats.P0AN++
		return OutcomeP0AN
	default:
		p.Stats.PMAN++
		return OutcomePMAN
	}
}

// Outcome classifies a pointer-reload prediction resolution (Figure 5).
type Outcome uint8

const (
	// OutcomeOK: prediction matched the actual PID (including 0/0).
	OutcomeOK Outcome = iota
	// OutcomePNA0: predicted PID(N), actual PID(0) — the injected
	// capability check is marked an x86 zero-idiom and squashed at the
	// instruction queue before dispatch.
	OutcomePNA0
	// OutcomeP0AN: predicted PID(0), actual PID(N) — the pipeline is
	// flushed and execution restarts at the offending instruction with
	// the right capability checks injected.
	OutcomeP0AN
	// OutcomePMAN: predicted PID(M), actual PID(N) — the right PID is
	// forwarded and the tracking structures updated; no flush.
	OutcomePMAN
)

var outcomeNames = [...]string{"ok", "PNA0", "P0AN", "PMAN"}

// String names the outcome.
func (o Outcome) String() string {
	if int(o) < len(outcomeNames) {
		return outcomeNames[o]
	}
	return "outcome?"
}
