package tracker

import (
	"chex86/internal/core"
	"chex86/internal/isa"
)

// transPID is one transient (in-flight, uncommitted) PID propagation,
// tagged with the sequence number of the instruction that produced it.
type transPID struct {
	seq uint64
	pid core.PID
}

// regTag is the speculative pointer tracker's tag for one architectural
// register (Section V-D): the finalized PID propagated by the last
// committed instruction, plus a vector of transient PIDs propagated by
// in-flight older instructions with their sequence numbers.
type regTag struct {
	committed core.PID
	transient []transPID
	inActive  bool // r is on RegTags.active
}

// RegTags tracks PID tags for all registers (architectural plus the
// micro-op temporaries). Registers with in-flight transient PIDs are kept
// on a compact active list so the per-commit finalization scan touches
// only them instead of sweeping every register each retirement.
type RegTags struct {
	tags   [isa.NumRegs]regTag
	active []isa.Reg // registers with non-empty transient lists
}

// NewRegTags returns zeroed tags.
func NewRegTags() *RegTags { return &RegTags{} }

// Current returns the PID the front-end should use for capability
// transfers involving r: the transient PID with the highest sequence
// number if any exist (the fetch stage runs ahead of the rest of the
// pipeline), otherwise the committed PID.
func (t *RegTags) Current(r isa.Reg) core.PID {
	if !r.Valid() || r >= isa.NumRegs {
		return 0
	}
	tag := &t.tags[r]
	if n := len(tag.transient); n > 0 {
		return tag.transient[n-1].pid
	}
	return tag.committed
}

// Propagate records a transient PID propagation to register r by the
// instruction with sequence number seq.
func (t *RegTags) Propagate(seq uint64, r isa.Reg, pid core.PID) {
	if !r.Valid() || r >= isa.NumRegs {
		return
	}
	tag := &t.tags[r]
	// Coalesce repeated propagation by the same instruction (e.g. a
	// corrected prediction overwriting the speculative one).
	if n := len(tag.transient); n > 0 && tag.transient[n-1].seq == seq {
		tag.transient[n-1].pid = pid
		return
	}
	tag.transient = append(tag.transient, transPID{seq: seq, pid: pid})
	if !tag.inActive {
		tag.inActive = true
		t.active = append(t.active, r)
	}
}

// Commit finalizes all transient propagations with sequence numbers at or
// below seq: the newest of them becomes the committed PID.
func (t *RegTags) Commit(seq uint64) {
	w := 0
	for _, r := range t.active {
		tag := &t.tags[r]
		i := 0
		for i < len(tag.transient) && tag.transient[i].seq <= seq {
			tag.committed = tag.transient[i].pid
			i++
		}
		if i > 0 {
			tag.transient = tag.transient[:copy(tag.transient, tag.transient[i:])]
		}
		if len(tag.transient) == 0 {
			tag.inActive = false
			continue
		}
		t.active[w] = r
		w++
	}
	t.active = t.active[:w]
}

// Squash discards all transient propagations younger than seq (sequence
// number strictly greater), implementing the misspeculation recovery of
// Section V-D: on a squash signal the tracker inspects the offending
// instruction's sequence number and removes newer transient PIDs.
func (t *RegTags) Squash(seq uint64) {
	w := 0
	for _, r := range t.active {
		tag := &t.tags[r]
		n := len(tag.transient)
		for n > 0 && tag.transient[n-1].seq > seq {
			n--
		}
		tag.transient = tag.transient[:n]
		if n == 0 {
			tag.inActive = false
			continue
		}
		t.active[w] = r
		w++
	}
	t.active = t.active[:w]
}

// Reset clears all tags (process switch).
func (t *RegTags) Reset() {
	for r := range t.tags {
		t.tags[r] = regTag{}
	}
	t.active = t.active[:0]
}
