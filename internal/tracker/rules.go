// Package tracker implements the CHEx86 speculative pointer tracker
// (Section V): the rule-based pointer tracking engine driven by the
// automatically constructed rule database of Table I, per-register PID tags
// with committed and transient (in-flight) state and squash recovery, the
// spilled-pointer alias detection machinery — stride-based pointer-reload
// predictor with blacklist, alias cache with victim cache, and the 5-level
// hierarchical shadow alias table — and the hardware checker co-processor
// used to validate and incrementally extend the rule database.
package tracker

import (
	"fmt"
	"strings"

	"chex86/internal/core"
	"chex86/internal/isa"
)

// AddrMode classifies a micro-op's operand pattern for rule matching.
type AddrMode uint8

const (
	ModeRegReg AddrMode = iota
	ModeRegImm
	ModeRegMem
	ModeOther
)

var modeNames = [...]string{"Reg-Reg", "Reg-Imm", "Reg-Mem(qw)", "-"}

// String names the addressing mode.
func (m AddrMode) String() string { return modeNames[m] }

// Rule is one entry of the pointer-tracking rule database. Propagate
// computes the destination PID from the source PIDs; rules for memory
// micro-ops are handled structurally by the engine (the LD rule consults
// the alias machinery, the ST rule updates it).
type Rule struct {
	Name      string // µop mnemonic as listed in Table I
	Uop       isa.UopType
	Alu       isa.AluOp
	HasAlu    bool
	Mode      AddrMode
	Example   string // micro-code example from Table I
	Semantics string // capability-propagation description
	CExample  string // source-level code example

	// Propagate computes PID(dst) from the source PIDs for register rules.
	Propagate func(src1, src2 core.PID) core.PID
}

// Matches reports whether the rule applies to the micro-op.
func (r *Rule) Matches(u *isa.Uop) bool {
	if u.Type != r.Uop {
		return false
	}
	if r.HasAlu && u.Alu != r.Alu {
		return false
	}
	switch r.Mode {
	case ModeRegReg:
		return u.Type != isa.UAlu || !u.HasImm
	case ModeRegImm:
		return u.Type != isa.UAlu || u.HasImm
	}
	return true
}

// preferFirst propagates the first source's PID unconditionally (the SUB
// rule: "always assign the PID of the second operand", where Table I's
// second operand is our Src1 in three-address form).
func preferFirst(a, _ core.PID) core.PID { return a }

// eitherNonzero implements the symmetric ADD/AND rule: if the PID of one
// source operand is zero, assign the PID of the other source operand. When
// both are tagged, the genuine capability (positive PID) wins over the
// wild-integer tag.
func eitherNonzero(a, b core.PID) core.PID {
	switch {
	case a == 0:
		return b
	case b == 0:
		return a
	case a == core.WildPID:
		return b
	default:
		return a
	}
}

// DefaultRules returns the automatically constructed rule database of
// Table I. The database is ordered; the engine applies the first matching
// rule and falls through to the default (PID(result) <- 0) otherwise.
func DefaultRules() []Rule {
	return []Rule{
		{
			Name: "MOV", Uop: isa.UMov, Mode: ModeRegReg,
			Example:   "mov %rcx, %rbx",
			Semantics: "PID(rcx) <- PID(rbx)",
			CExample:  "ptr1 = ptr2;",
			Propagate: preferFirst,
		},
		{
			Name: "AND", Uop: isa.UAlu, Alu: isa.AluAnd, HasAlu: true, Mode: ModeRegReg,
			Example:   "and %rcx, %rbx, %rax",
			Semantics: "if PID of one source is zero, assign the PID of the other source",
			CExample:  "ptr2 = ptr1 & mask;",
			Propagate: eitherNonzero,
		},
		{
			Name: "AND", Uop: isa.UAlu, Alu: isa.AluAnd, HasAlu: true, Mode: ModeRegImm,
			Example:   "andi %rcx, %rbx, $imm",
			Semantics: "PID(rcx) <- PID(rbx)",
			CExample:  "ptr2 = ptr1 & 0xffff0000;",
			Propagate: preferFirst,
		},
		{
			Name: "LEA", Uop: isa.ULea, Mode: ModeRegReg,
			Example:   "lea %rcx, (%rbx, %idx, scl)",
			Semantics: "PID(rcx) <- PID(rbx)",
			CExample:  "ptr = &a[50];",
			Propagate: eitherNonzero, // base preferred; index covers base-less forms
		},
		{
			Name: "ADD", Uop: isa.UAlu, Alu: isa.AluAdd, HasAlu: true, Mode: ModeRegReg,
			Example:   "add %rcx, %rbx, %rax",
			Semantics: "if PID of one source is zero, assign the PID of the other source",
			CExample:  "ptr2 = ptr1 + const;",
			Propagate: eitherNonzero,
		},
		{
			Name: "ADD", Uop: isa.UAlu, Alu: isa.AluAdd, HasAlu: true, Mode: ModeRegImm,
			Example:   "addi %rcx, %rbx, $imm",
			Semantics: "PID(rcx) <- PID(rbx)",
			CExample:  "ptr2 = ptr1 + 4;",
			Propagate: preferFirst,
		},
		{
			Name: "SUB", Uop: isa.UAlu, Alu: isa.AluSub, HasAlu: true, Mode: ModeRegReg,
			Example:   "sub %rcx, %rbx, %rax",
			Semantics: "always assign the PID of the minuend to the destination",
			CExample:  "ptr2 = ptr1 - const;",
			Propagate: preferFirst,
		},
		{
			Name: "SUB", Uop: isa.UAlu, Alu: isa.AluSub, HasAlu: true, Mode: ModeRegImm,
			Example:   "subi %rcx, %rbx, $imm",
			Semantics: "PID(rcx) <- PID(rbx)",
			CExample:  "ptr2 = ptr1 - 4;",
			Propagate: preferFirst,
		},
		{
			Name: "LD", Uop: isa.ULoad, Mode: ModeRegMem,
			Example:   "ldq %rcx, [EA]",
			Semantics: "PID(rcx) <- PID(Mem[EA])",
			CExample:  "int *ptr2 = ptr1[100];",
		},
		{
			Name: "ST", Uop: isa.UStore, Mode: ModeRegMem,
			Example:   "stq %rcx, [EA]",
			Semantics: "PID(Mem[EA]) <- PID(rcx)",
			CExample:  "*ptr1 = ptr2;",
		},
		{
			Name: "MOVI", Uop: isa.ULimm, Mode: ModeRegImm,
			Example:   "limm %rax, $imm",
			Semantics: "PID(rax) <- PID(-1)",
			CExample:  "int *p = (int *)0x7fff1000;",
			Propagate: func(_, _ core.PID) core.PID { return core.WildPID },
		},
	}
}

// RuleDB is the configurable pointer-tracking rule database, updatable in
// the field via microcode updates.
type RuleDB struct {
	rules []Rule
}

// NewRuleDB returns a database seeded with the default (Table I) rules.
func NewRuleDB() *RuleDB { return &RuleDB{rules: DefaultRules()} }

// Add appends a rule (the field-update path for new workloads).
func (db *RuleDB) Add(r Rule) { db.rules = append(db.rules, r) }

// Rules returns the rule list.
func (db *RuleDB) Rules() []Rule { return db.rules }

// Match returns the first rule matching u, or nil (the engine then applies
// the default PID(result) <- 0).
func (db *RuleDB) Match(u *isa.Uop) *Rule {
	for i := range db.rules {
		if db.rules[i].Matches(u) {
			return &db.rules[i]
		}
	}
	return nil
}

// Format renders the database as a table mirroring Table I of the paper.
func (db *RuleDB) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-6s %-12s %-30s %s\n", "uop", "Addr. Mode", "Example", "Capability Propagation")
	for _, r := range db.rules {
		fmt.Fprintf(&b, "%-6s %-12s %-30s %s\n", r.Name, r.Mode, r.Example, r.Semantics)
	}
	fmt.Fprintf(&b, "%-6s %-12s %-30s %s\n", "*", "-", "all other operations", "PID(result) <- PID(0)")
	return b.String()
}
