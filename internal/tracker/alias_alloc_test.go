package tracker

import (
	"testing"

	"chex86/internal/core"
	"chex86/internal/mem"
)

// TestWalkIntoZeroAllocs asserts the scratch-reuse contract of WalkInto:
// with a warmed buffer passed back as buf[:0], a hardware table walk must
// not allocate. Walk (the nil-buffer convenience form) allocates once per
// call; the pipeline's hot loop therefore uses WalkInto exclusively.
func TestWalkIntoZeroAllocs(t *testing.T) {
	m := mem.New()
	tab := NewAliasTable(m, mem.NewPageTable())
	tab.Set(0x7000_0000, core.PID(3))

	var buf []uint64
	_, buf = tab.WalkInto(0x7000_0000, buf[:0]) // prime the backing array

	n := testing.AllocsPerRun(1000, func() {
		var pid core.PID
		pid, buf = tab.WalkInto(0x7000_0000, buf[:0])
		if pid != 3 {
			t.Fatalf("walk returned pid %d, want 3", pid)
		}
		if len(buf) != tab.WalkLevels {
			t.Fatalf("walk touched %d levels, want %d", len(buf), tab.WalkLevels)
		}
	})
	if n != 0 {
		t.Fatalf("WalkInto allocates %.3f objects/walk with a reused buffer, want 0", n)
	}
}

// TestWalkIntoMatchesWalk pins that the two forms are behaviorally
// identical.
func TestWalkIntoMatchesWalk(t *testing.T) {
	m := mem.New()
	tab := NewAliasTable(m, mem.NewPageTable())
	tab.Set(0x7000_1000, core.PID(9))
	for _, addr := range []uint64{0x7000_1000, 0x7000_1004, 0x9000_0000} {
		wantPID, wantTouches := tab.Walk(addr)
		gotPID, gotTouches := tab.WalkInto(addr, nil)
		if gotPID != wantPID || len(gotTouches) != len(wantTouches) {
			t.Fatalf("addr %#x: WalkInto (%d, %v) != Walk (%d, %v)",
				addr, gotPID, gotTouches, wantPID, wantTouches)
		}
		for i := range wantTouches {
			if gotTouches[i] != wantTouches[i] {
				t.Fatalf("addr %#x: touch %d: %#x != %#x", addr, i, gotTouches[i], wantTouches[i])
			}
		}
	}
}

// BenchmarkWalkInto measures the walker with scratch reuse (the pipeline's
// calling convention).
func BenchmarkWalkInto(b *testing.B) {
	m := mem.New()
	tab := NewAliasTable(m, mem.NewPageTable())
	tab.Set(0x7000_0000, core.PID(3))
	var buf []uint64
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, buf = tab.WalkInto(0x7000_0000, buf[:0])
	}
}
