package tracker

import "chex86/internal/core"

// RuleExport is the JSON-marshalable form of one rule-database entry.
// Propagate closures cannot be serialized, so Propagation carries a
// behavioral classification obtained by sampling the closure over
// representative PID pairs — the same technique the static pointer-flow
// analyzer (internal/ptrflow) uses to abstract the database.
type RuleExport struct {
	Name        string `json:"name"`
	Uop         string `json:"uop"`
	Alu         string `json:"alu,omitempty"`
	Mode        string `json:"mode"`
	Example     string `json:"example"`
	Semantics   string `json:"semantics"`
	CExample    string `json:"c_example,omitempty"`
	Propagation string `json:"propagation"`
}

// Propagation classes.
const (
	// PropStructural: no Propagate closure; the engine handles the rule
	// structurally (LD consults the alias machinery, ST updates it).
	PropStructural = "structural"
	// PropConstWild: the destination is always tagged wild (MOVI).
	PropConstWild = "constant-wild"
	// PropFirstSource: the destination takes the first source's PID.
	PropFirstSource = "first-source"
	// PropEitherNonzero: zero sources defer to the other operand, and a
	// genuine capability beats the wild tag (symmetric ADD/AND).
	PropEitherNonzero = "either-nonzero-prefer-capability"
	// PropCustom: none of the known shapes.
	PropCustom = "custom"
)

// classifyPropagation samples a Propagate closure over representative PID
// pairs: zero (untagged), two distinct capabilities, and the wild tag.
func classifyPropagation(f func(a, b core.PID) core.PID) string {
	if f == nil {
		return PropStructural
	}
	const p, q = core.PID(5), core.PID(7)
	w := core.WildPID
	pairs := [][2]core.PID{
		{0, 0}, {p, 0}, {0, p}, {p, q}, {q, p},
		{w, 0}, {0, w}, {w, p}, {p, w}, {w, w},
	}
	constWild, first, either := true, true, true
	for _, pr := range pairs {
		got := f(pr[0], pr[1])
		if got != w {
			constWild = false
		}
		if got != pr[0] {
			first = false
		}
		if got != eitherNonzero(pr[0], pr[1]) {
			either = false
		}
	}
	switch {
	case constWild:
		return PropConstWild
	case first:
		return PropFirstSource
	case either:
		return PropEitherNonzero
	}
	return PropCustom
}

// Export returns the database in JSON-marshalable form, in database
// order (the order is semantic: the engine applies the first match).
func (db *RuleDB) Export() []RuleExport {
	out := make([]RuleExport, 0, len(db.rules))
	for i := range db.rules {
		r := &db.rules[i]
		e := RuleExport{
			Name:        r.Name,
			Uop:         r.Uop.String(),
			Mode:        r.Mode.String(),
			Example:     r.Example,
			Semantics:   r.Semantics,
			CExample:    r.CExample,
			Propagation: classifyPropagation(r.Propagate),
		}
		if r.HasAlu {
			e.Alu = r.Alu.String()
		}
		out = append(out, e)
	}
	return out
}
