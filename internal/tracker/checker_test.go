package tracker

import (
	"testing"

	"chex86/internal/asm"
	"chex86/internal/core"
	"chex86/internal/emu"
	"chex86/internal/isa"
)

// fabricate a record carrying a register result.
func resultRec(dst isa.Reg, val uint64) *emu.Rec {
	in := &isa.Inst{Op: isa.MOV, Dst: isa.RegOp(dst), Src: isa.RegOp(isa.RBX)}
	return &emu.Rec{Inst: in, Val: val, HasVal: true}
}

func TestCheckerAgreement(t *testing.T) {
	truth := emu.NewTruth()
	pid := truth.Add(0x1000, 64)
	tags := NewRegTags()
	c := NewChecker(truth, tags)

	// Tracker says pid; ground truth agrees: match.
	tags.Propagate(1, isa.RAX, pid)
	if !c.Validate(resultRec(isa.RAX, 0x1010)) {
		t.Fatal("agreeing prediction flagged")
	}
	// Tracker says 0 for a non-pointer value: match.
	tags.Propagate(2, isa.RAX, 0)
	if !c.Validate(resultRec(isa.RAX, 12345)) {
		t.Fatal("non-pointer value flagged")
	}
	// Wild tag over a non-pointer is deliberate conservatism, not a bug.
	tags.Propagate(3, isa.RAX, core.WildPID)
	if !c.Validate(resultRec(isa.RAX, 7)) {
		t.Fatal("wild-over-integer must not count as a rule failure")
	}
	if c.Stats.Mismatches != 0 {
		t.Fatalf("stats: %+v", c.Stats)
	}
}

func TestCheckerMismatchDump(t *testing.T) {
	truth := emu.NewTruth()
	pid := truth.Add(0x1000, 64)
	tags := NewRegTags()
	c := NewChecker(truth, tags)

	// The tracker lost the pointer: result is inside the tracked block but
	// the tag says 0 — the rule-gap case the checker dumps for manual
	// rule-database extension.
	tags.Propagate(1, isa.RAX, 0)
	if c.Validate(resultRec(isa.RAX, 0x1008)) {
		t.Fatal("rule gap must be flagged")
	}
	if c.Stats.Mismatches != 1 || len(c.Log) != 1 {
		t.Fatalf("mismatch not dumped: %+v", c.Stats)
	}
	m := c.Log[0]
	if m.Actual != pid || m.Tracked != 0 || m.Value != 0x1008 {
		t.Fatalf("dump contents wrong: %+v", m)
	}
	if m.String() == "" {
		t.Fatal("dump must render")
	}
}

func TestCheckerIgnoresNonRegisterResults(t *testing.T) {
	truth := emu.NewTruth()
	c := NewChecker(truth, NewRegTags())
	st := &emu.Rec{Inst: &isa.Inst{Op: isa.MOV, Dst: isa.MemOp(isa.RBX, 0), Src: isa.RegOp(isa.RAX)}}
	if !c.Validate(st) {
		t.Fatal("stores carry no register result to validate")
	}
	if c.Stats.Validations != 0 {
		t.Fatal("non-results must not count as validations")
	}
}

// TestCheckerOverWholeProgram runs the checker against a guest program
// with heavy pointer traffic through asm/emu directly (without the
// pipeline), confirming zero mismatches.
func TestCheckerOverWholeProgram(t *testing.T) {
	b := asm.NewBuilder()
	b.MovRI(isa.RDI, 128)
	b.CallAddr(0x500000) // malloc
	b.MovRR(isa.RBX, isa.RAX)
	b.AddRI(isa.RBX, 16)
	b.SubRI(isa.RBX, 8)
	b.MovRR(isa.RCX, isa.RBX)
	b.Hlt()
	m := emu.New(b.MustBuild(), emu.Options{})
	e := newEngine()
	checker := NewChecker(m.Truth, e.Tags)
	var d dec
	for {
		rec, err := m.Step()
		if err != nil {
			t.Fatal(err)
		}
		if rec == nil {
			break
		}
		d.apply(e, rec)
		checker.Validate(rec)
	}
	if checker.Stats.Mismatches != 0 {
		t.Fatalf("mismatches over pointer arithmetic: %v", checker.Log)
	}
	if checker.Stats.Validations == 0 {
		t.Fatal("nothing validated")
	}
}

// dec is a minimal front-end stand-in: it applies the tracking rules for
// the handful of macro shapes the test program uses.
type dec struct{}

func (dec) apply(e *Engine, rec *emu.Rec) {
	in := rec.Inst
	seq := rec.Seq
	switch {
	case rec.Event == emu.EvAllocExit:
		e.SetReg(seq, isa.RAX, rec.AllocPID)
	case in.Op == isa.MOV && in.Dst.Kind == isa.OpReg && in.Src.Kind == isa.OpReg:
		e.ApplyRegRule(seq, &isa.Uop{Type: isa.UMov, Dst: in.Dst.Reg, Src1: in.Src.Reg, Src2: isa.RNone})
	case in.Op == isa.MOV && in.Dst.Kind == isa.OpReg && in.Src.Kind == isa.OpImm:
		e.ApplyRegRule(seq, &isa.Uop{Type: isa.ULimm, Dst: in.Dst.Reg, Imm: in.Src.Imm, HasImm: true, Src1: isa.RNone, Src2: isa.RNone})
	case in.Op == isa.ADD && in.Dst.Kind == isa.OpReg && in.Src.Kind == isa.OpImm:
		e.ApplyRegRule(seq, &isa.Uop{Type: isa.UAlu, Alu: isa.AluAdd, Dst: in.Dst.Reg, Src1: in.Dst.Reg, Imm: in.Src.Imm, HasImm: true, Src2: isa.RNone})
	case in.Op == isa.SUB && in.Dst.Kind == isa.OpReg && in.Src.Kind == isa.OpImm:
		e.ApplyRegRule(seq, &isa.Uop{Type: isa.UAlu, Alu: isa.AluSub, Dst: in.Dst.Reg, Src1: in.Dst.Reg, Imm: in.Src.Imm, HasImm: true, Src2: isa.RNone})
	}
}
