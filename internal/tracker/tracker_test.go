package tracker

import (
	"testing"
	"testing/quick"

	"chex86/internal/core"
	"chex86/internal/isa"
	"chex86/internal/mem"
)

func newEngine() *Engine {
	pt := mem.NewPageTable()
	return NewEngine(NewRuleDB(), NewAliasTable(mem.New(), pt), NewAliasPredictor(512))
}

// TestTableIRules drives every rule of Table I through the engine and
// checks the propagated PID, mirroring the paper's rows.
func TestTableIRules(t *testing.T) {
	const p1, p2 = core.PID(11), core.PID(22)
	cases := []struct {
		name string
		uop  isa.Uop
		rbx  core.PID // preset tag for RBX (src1)
		rax  core.PID // preset tag for RAX (src2)
		want core.PID // expected PID(RCX)
	}{
		{"MOV reg-reg", isa.Uop{Type: isa.UMov, Dst: isa.RCX, Src1: isa.RBX, Src2: isa.RNone}, p1, 0, p1},
		{"AND reg-reg left", isa.Uop{Type: isa.UAlu, Alu: isa.AluAnd, Dst: isa.RCX, Src1: isa.RBX, Src2: isa.RAX}, p1, 0, p1},
		{"AND reg-reg right", isa.Uop{Type: isa.UAlu, Alu: isa.AluAnd, Dst: isa.RCX, Src1: isa.RBX, Src2: isa.RAX}, 0, p2, p2},
		{"AND reg-imm", isa.Uop{Type: isa.UAlu, Alu: isa.AluAnd, Dst: isa.RCX, Src1: isa.RBX, Imm: 0xffff0000, HasImm: true, Src2: isa.RNone}, p1, 0, p1},
		{"LEA", isa.Uop{Type: isa.ULea, Dst: isa.RCX, Src1: isa.RNone, Src2: isa.RNone,
			Mem: isa.MemRef{Base: isa.RBX, Index: isa.RNone, Scale: 8, Disp: 400}}, p1, 0, p1},
		{"ADD reg-reg", isa.Uop{Type: isa.UAlu, Alu: isa.AluAdd, Dst: isa.RCX, Src1: isa.RBX, Src2: isa.RAX}, 0, p2, p2},
		{"ADD reg-imm", isa.Uop{Type: isa.UAlu, Alu: isa.AluAdd, Dst: isa.RCX, Src1: isa.RBX, Imm: 4, HasImm: true, Src2: isa.RNone}, p1, 0, p1},
		{"SUB reg-reg keeps minuend", isa.Uop{Type: isa.UAlu, Alu: isa.AluSub, Dst: isa.RCX, Src1: isa.RBX, Src2: isa.RAX}, p1, p2, p1},
		{"SUB reg-imm", isa.Uop{Type: isa.UAlu, Alu: isa.AluSub, Dst: isa.RCX, Src1: isa.RBX, Imm: 4, HasImm: true, Src2: isa.RNone}, p1, 0, p1},
		{"MOVI wild", isa.Uop{Type: isa.ULimm, Dst: isa.RCX, Imm: 0x7fff1000, HasImm: true, Src1: isa.RNone, Src2: isa.RNone}, 0, 0, core.WildPID},
		{"default clears", isa.Uop{Type: isa.UAlu, Alu: isa.AluMul, Dst: isa.RCX, Src1: isa.RBX, Src2: isa.RAX}, p1, p2, 0},
	}
	for i, c := range cases {
		e := newEngine()
		seq := uint64(i + 1)
		e.Tags.Propagate(seq, isa.RBX, c.rbx)
		e.Tags.Propagate(seq, isa.RAX, c.rax)
		e.ApplyRegRule(seq+1, &c.uop)
		if got := e.Tags.Current(isa.RCX); got != c.want {
			t.Errorf("%s: PID(rcx)=%d, want %d", c.name, got, c.want)
		}
	}
}

func TestLDSTRules(t *testing.T) {
	e := newEngine()
	const pid = core.PID(9)
	e.Tags.Propagate(1, isa.RBX, pid)

	// ST: PID(Mem[EA]) <- PID(rbx), staged in the store buffer.
	stored, updated := e.StoreAlias(2, 0x5000, isa.RBX)
	if !updated || stored != pid {
		t.Fatal("ST rule must record the spilled alias")
	}
	if e.Aliases.Lookup(0x5000) != 0 {
		t.Fatal("uncommitted store must not reach the shadow alias table")
	}
	// LD before the store commits: forwarded from the store buffer.
	pred := e.PredictLoad(0x400100)
	res := e.ResolveLoad(3, 0x400100, 0x5000, isa.RCX, pred)
	if res.Actual != pid || e.Tags.Current(isa.RCX) != pid {
		t.Fatal("LD must forward the in-flight alias PID from the store buffer")
	}
	// Commit: the alias reaches the shadow table.
	e.CommitThrough(3)
	if e.Aliases.Lookup(0x5000) != pid {
		t.Fatal("commit must drain the store buffer into the alias table")
	}
	// A non-pointer store over the alias must clear it (after commit).
	if _, updated := e.StoreAlias(4, 0x5000, isa.R15); !updated {
		t.Fatal("clearing store must queue an alias clear")
	}
	e.CommitThrough(4)
	if e.Aliases.Lookup(0x5000) != 0 {
		t.Fatal("stale alias survived a data overwrite")
	}
}

func TestWildPIDNeverSpills(t *testing.T) {
	e := newEngine()
	e.Tags.Propagate(1, isa.RBX, core.WildPID)
	if _, updated := e.StoreAlias(2, 0x5000, isa.RBX); updated {
		t.Fatal("wild tags carry no capability and must not create aliases")
	}
}

// TestStoreBufferSquash: wrong-path spills must never pollute the shadow
// alias table (Section V-C's reason for holding PIDs in the store buffer).
func TestStoreBufferSquash(t *testing.T) {
	e := newEngine()
	e.Tags.Propagate(1, isa.RBX, 7)
	e.StoreAlias(5, 0x6000, isa.RBX) // wrong-path spill
	e.SquashAfter(4)
	e.CommitThrough(10)
	if e.Aliases.Lookup(0x6000) != 0 {
		t.Fatal("squashed store leaked into the alias table")
	}
	if e.SB.Stats.Squashed != 1 {
		t.Fatalf("squash not counted: %+v", e.SB.Stats)
	}
}

func TestStoreBufferForwardingOrder(t *testing.T) {
	sb := NewStoreBuffer(8)
	sb.Insert(1, 0x1000, 5, false)
	sb.Insert(2, 0x1000, 9, false) // younger store to the same word
	if pid, ok := sb.Forward(0x1000); !ok || pid != 9 {
		t.Fatalf("forwarding must be youngest-first, got %d", pid)
	}
	sb.Insert(3, 0x1000, 0, true) // clearing store
	if pid, ok := sb.Forward(0x1004); !ok || pid != 0 {
		t.Fatal("clear must forward PID 0 for any offset in the word")
	}
	if _, ok := sb.Forward(0x2000); ok {
		t.Fatal("unrelated address must miss")
	}
}

func TestDerefPID(t *testing.T) {
	e := newEngine()
	e.Tags.Propagate(1, isa.RBX, 7)
	u := &isa.Uop{Type: isa.ULoad, Dst: isa.RAX, Mem: isa.MemRef{Base: isa.RBX, Index: isa.RCX}}
	if e.DerefPID(u) != 7 {
		t.Fatal("base register's PID selects the capability")
	}
	e.Tags.Propagate(2, isa.RBX, 0)
	e.Tags.Propagate(2, isa.RCX, 8)
	if e.DerefPID(u) != 8 {
		t.Fatal("index register is the fallback when the base is untagged")
	}
}

func TestTransientCommitSquash(t *testing.T) {
	tags := NewRegTags()
	tags.Propagate(1, isa.RAX, 10)
	tags.Propagate(5, isa.RAX, 20)
	tags.Propagate(9, isa.RAX, 30)
	if tags.Current(isa.RAX) != 30 {
		t.Fatal("front-end must use the newest transient PID")
	}
	// Squash everything younger than seq 5 (branch mispredict recovery).
	tags.Squash(5)
	if tags.Current(isa.RAX) != 20 {
		t.Fatal("squash must discard younger transients only")
	}
	// Commit through seq 5: the PID becomes architectural.
	tags.Commit(5)
	if tags.Current(isa.RAX) != 20 {
		t.Fatal("commit must preserve the PID")
	}
	tags.Squash(0) // squash everything in flight
	if tags.Current(isa.RAX) != 20 {
		t.Fatal("committed state survives any squash")
	}
}

// TestTagsProperty: for any interleaving, Current equals the newest
// propagation not yet squashed, falling back to the committed value.
func TestTagsProperty(t *testing.T) {
	f := func(pids []uint8) bool {
		tags := NewRegTags()
		var want core.PID
		for i, p := range pids {
			pid := core.PID(p%50) + 1
			tags.Propagate(uint64(i+1), isa.RDX, pid)
			want = pid
		}
		return tags.Current(isa.RDX) == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAliasTable(t *testing.T) {
	m := mem.New()
	pt := mem.NewPageTable()
	at := NewAliasTable(m, pt)
	at.Set(0x5004, 7) // unaligned: rounds down
	if at.Lookup(0x5000) != 7 {
		t.Fatal("alias entries are 8-byte-word granular")
	}
	if !pt.AliasHosting(0x5000) {
		t.Fatal("alias-hosting bit must be set on the page")
	}
	pid, touches := at.Walk(0x5000)
	if pid != 7 || len(touches) != at.WalkLevels {
		t.Fatalf("walk returned pid=%d with %d touches", pid, len(touches))
	}
	if at.LeafAddr(0x5000) == 0 {
		t.Fatal("leaf address must exist after materialization")
	}
	at.Set(0x5000, 0)
	if at.Lookup(0x5000) != 0 || at.Entries() != 0 {
		t.Fatal("clearing must remove the entry")
	}
	if at.FootprintBytes() == 0 {
		t.Fatal("the materialized leaf page remains resident")
	}
}

func TestPredictorConstantAndStride(t *testing.T) {
	p := NewAliasPredictor(512)
	pc := uint64(0x400100)
	// Constant PID: correct from the third resolve.
	for i := 0; i < 10; i++ {
		pred := p.Predict(pc)
		p.Resolve(pc, pred, 42)
	}
	if p.Predict(pc) != 42 {
		t.Fatal("constant pattern not learned")
	}
	// Striding PIDs at another PC.
	pc2 := uint64(0x400200)
	for i := core.PID(1); i <= 10; i++ {
		pred := p.Predict(pc2)
		p.Resolve(pc2, pred, i*3)
	}
	if p.Predict(pc2) != 33 {
		t.Fatalf("stride pattern not learned: predicted %d, want 33", p.Predict(pc2))
	}
}

func TestPredictorOutcomeClasses(t *testing.T) {
	p := NewAliasPredictor(512)
	if p.Resolve(0x100, 5, 0) != OutcomePNA0 {
		t.Fatal("predicted-N actual-0 is PNA0")
	}
	if p.Resolve(0x200, 0, 5) != OutcomeP0AN {
		t.Fatal("predicted-0 actual-N is P0AN")
	}
	if p.Resolve(0x300, 4, 5) != OutcomePMAN {
		t.Fatal("predicted-M actual-N is PMAN")
	}
	if p.Resolve(0x400, 5, 5) != OutcomeOK {
		t.Fatal("match is OK")
	}
	if p.Stats.PNA0 != 1 || p.Stats.P0AN != 1 || p.Stats.PMAN != 1 {
		t.Fatalf("class counters wrong: %+v", p.Stats)
	}
}

func TestBlacklistFiltersDataLoads(t *testing.T) {
	p := NewAliasPredictor(512)
	pc := uint64(0x400300)
	for i := 0; i < 5; i++ {
		pred := p.Predict(pc)
		p.Resolve(pc, pred, 0) // always a data load
	}
	before := p.Stats.Blacklisted
	p.Predict(pc)
	if p.Stats.Blacklisted != before+1 {
		t.Fatal("repeated non-pointer loads must be blacklisted")
	}
	// A pointer reload rescinds the blacklisting.
	p.Resolve(pc, 0, 9)
	p.Predict(pc)
	p.Resolve(pc, p.Predict(pc), 9)
	if p.Predict(pc) != 9 {
		t.Fatal("blacklist must be rescinded after a real reload")
	}
}

func TestRuleDBFormatAndExtension(t *testing.T) {
	db := NewRuleDB()
	if len(db.Rules()) != 11 {
		t.Fatalf("Table I carries 11 rules, got %d", len(db.Rules()))
	}
	s := db.Format()
	for _, frag := range []string{"MOV", "MOVI", "ldq %rcx, [EA]", "PID(result) <- PID(0)"} {
		if !contains(s, frag) {
			t.Errorf("formatted database missing %q", frag)
		}
	}
	// Field extension: a new rule becomes matchable.
	db.Add(Rule{Name: "XOR", Uop: isa.UAlu, Alu: isa.AluXor, HasAlu: true, Mode: ModeRegReg,
		Propagate: func(a, b core.PID) core.PID { return a }})
	u := &isa.Uop{Type: isa.UAlu, Alu: isa.AluXor, Dst: isa.RCX, Src1: isa.RBX, Src2: isa.RAX}
	if r := db.Match(u); r == nil || r.Name != "XOR" {
		t.Fatal("field-updated rule not matched")
	}
}

func contains(s, sub string) bool {
	return len(s) >= len(sub) && (s == sub || len(s) > 0 && indexOf(s, sub) >= 0)
}

func indexOf(s, sub string) int {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return i
		}
	}
	return -1
}

// TestAliasTableMatchesReference: any interleaving of sets and clears
// leaves the alias table agreeing with a reference map.
func TestAliasTableMatchesReference(t *testing.T) {
	f := func(ops []uint16) bool {
		at := NewAliasTable(mem.New(), mem.NewPageTable())
		ref := map[uint64]core.PID{}
		for i, op := range ops {
			addr := uint64(op%256) * 8
			if i%3 == 2 {
				at.Set(addr, 0)
				delete(ref, addr)
			} else {
				pid := core.PID(op%50) + 1
				at.Set(addr, pid)
				ref[addr] = pid
			}
		}
		for addr, pid := range ref {
			if at.Lookup(addr) != pid {
				return false
			}
		}
		return at.Entries() == len(ref)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
