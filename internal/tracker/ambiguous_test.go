package tracker

import (
	"testing"

	"chex86/internal/core"
	"chex86/internal/isa"
)

// Back-to-back rule-ambiguous sequences: consecutive micro-ops where more
// than one Table-I row could plausibly fire, or where the propagation
// choice of one op feeds the ambiguity of the next. These pin the
// database's disambiguation order (first match wins) and the
// capability-beats-wild preference that the static pointer-flow analyzer
// mirrors abstractly.

// step applies one register rule at the next sequence number.
func step(e *Engine, seq uint64, u isa.Uop) {
	e.ApplyRegRule(seq, &u)
}

func TestWildThenCapabilityChain(t *testing.T) {
	const p = core.PID(5)
	e := newEngine()
	e.Tags.Propagate(1, isa.RBX, p)

	// MOVI tags RCX wild; the following ADD sees wild+capability — the
	// genuine capability must win; the SUB then keeps the minuend's tag.
	step(e, 2, isa.Uop{Type: isa.ULimm, Dst: isa.RCX, Imm: 0x7fff_0000, HasImm: true, Src1: isa.RNone, Src2: isa.RNone})
	if got := e.Tags.Current(isa.RCX); got != core.WildPID {
		t.Fatalf("after MOVI: PID(rcx)=%d, want wild", got)
	}
	step(e, 3, isa.Uop{Type: isa.UAlu, Alu: isa.AluAdd, Dst: isa.RDX, Src1: isa.RCX, Src2: isa.RBX})
	if got := e.Tags.Current(isa.RDX); got != p {
		t.Fatalf("wild+capability ADD: PID(rdx)=%d, want %d (capability beats wild)", got, p)
	}
	step(e, 4, isa.Uop{Type: isa.UAlu, Alu: isa.AluSub, Dst: isa.RSI, Src1: isa.RDX, Src2: isa.RCX})
	if got := e.Tags.Current(isa.RSI); got != p {
		t.Fatalf("SUB after ambiguous ADD: PID(rsi)=%d, want %d (minuend)", got, p)
	}
}

func TestTwoCapabilitiesAddSubChain(t *testing.T) {
	const p, q = core.PID(5), core.PID(7)
	e := newEngine()
	e.Tags.Propagate(1, isa.RBX, p)
	e.Tags.Propagate(1, isa.RAX, q)

	// ptr+ptr is ambiguous (no rule says which survives); the ADD rule
	// keeps the first source. The back-to-back SUB (ptr-ptr = offset,
	// stays tagged per Table I) keeps the minuend again.
	step(e, 2, isa.Uop{Type: isa.UAlu, Alu: isa.AluAdd, Dst: isa.RCX, Src1: isa.RBX, Src2: isa.RAX})
	if got := e.Tags.Current(isa.RCX); got != p {
		t.Fatalf("ptr+ptr ADD: PID(rcx)=%d, want %d (first source)", got, p)
	}
	step(e, 3, isa.Uop{Type: isa.UAlu, Alu: isa.AluSub, Dst: isa.RDX, Src1: isa.RCX, Src2: isa.RAX})
	if got := e.Tags.Current(isa.RDX); got != p {
		t.Fatalf("SUB chain: PID(rdx)=%d, want %d", got, p)
	}
}

func TestClearingOpBreaksChain(t *testing.T) {
	const p, q = core.PID(5), core.PID(7)
	e := newEngine()
	e.Tags.Propagate(1, isa.RBX, p)
	e.Tags.Propagate(1, isa.RAX, q)

	// IMUL matches no rule: the default clears the destination even when
	// both sources carry capabilities; the next ADD re-tags from the
	// surviving source.
	step(e, 2, isa.Uop{Type: isa.UAlu, Alu: isa.AluMul, Dst: isa.RBX, Src1: isa.RBX, Src2: isa.RAX})
	if got := e.Tags.Current(isa.RBX); got != 0 {
		t.Fatalf("IMUL must clear: PID(rbx)=%d", got)
	}
	step(e, 3, isa.Uop{Type: isa.UAlu, Alu: isa.AluAdd, Dst: isa.RCX, Src1: isa.RBX, Src2: isa.RAX})
	if got := e.Tags.Current(isa.RCX); got != q {
		t.Fatalf("ADD after clear: PID(rcx)=%d, want %d", got, q)
	}
}

func TestInPlaceUpdateSequence(t *testing.T) {
	const p = core.PID(9)
	e := newEngine()
	e.Tags.Propagate(1, isa.RBX, p)

	// Pointer-bump idiom: addi in place, repeatedly. The tag must
	// survive arbitrarily many in-place updates (the analyzer's
	// fixpoint relies on this being monotone).
	for seq := uint64(2); seq < 10; seq++ {
		step(e, seq, isa.Uop{Type: isa.UAlu, Alu: isa.AluAdd, Dst: isa.RBX, Src1: isa.RBX, Imm: 8, HasImm: true, Src2: isa.RNone})
		if got := e.Tags.Current(isa.RBX); got != p {
			t.Fatalf("bump %d: PID(rbx)=%d, want %d", seq, got, p)
		}
	}
}

func TestBackToBackSpillsSameSlot(t *testing.T) {
	const p, q = core.PID(5), core.PID(7)
	e := newEngine()
	e.Tags.Propagate(1, isa.RBX, p)
	e.Tags.Propagate(1, isa.RAX, q)

	// Two stores to the same slot before any commit: the store buffer
	// must forward the newest, and the commit must leave the newest in
	// the shadow alias table.
	if _, ok := e.StoreAlias(2, 0x6000, isa.RBX); !ok {
		t.Fatal("first spill must record")
	}
	if _, ok := e.StoreAlias(3, 0x6000, isa.RAX); !ok {
		t.Fatal("second spill must record")
	}
	pred := e.PredictLoad(0x400200)
	res := e.ResolveLoad(4, 0x400200, 0x6000, isa.RCX, pred)
	if res.Actual != q {
		t.Fatalf("load must forward the newest in-flight spill: got %d, want %d", res.Actual, q)
	}
	e.CommitThrough(4)
	if got := e.Aliases.Lookup(0x6000); got != q {
		t.Fatalf("alias table after commit: %d, want %d", got, q)
	}
}

func TestAmbiguousRuleOrderFirstMatchWins(t *testing.T) {
	// Both AND rows (reg-reg and reg-imm) share the uop type; Matches
	// must disambiguate on HasImm so exactly one row fires for each form.
	db := NewRuleDB()
	regForm := isa.Uop{Type: isa.UAlu, Alu: isa.AluAnd, Dst: isa.RCX, Src1: isa.RBX, Src2: isa.RAX}
	immForm := isa.Uop{Type: isa.UAlu, Alu: isa.AluAnd, Dst: isa.RCX, Src1: isa.RBX, Imm: 1, HasImm: true, Src2: isa.RNone}
	r1, r2 := db.Match(&regForm), db.Match(&immForm)
	if r1 == nil || r2 == nil {
		t.Fatal("both AND forms must match")
	}
	if r1 == r2 {
		t.Fatal("reg-reg and reg-imm AND must resolve to different rows")
	}
	if r1.Mode != ModeRegReg || r2.Mode != ModeRegImm {
		t.Fatalf("mode mismatch: %v / %v", r1.Mode, r2.Mode)
	}
	// The symmetric row must not capture the immediate form: the
	// propagation differs (either-nonzero vs first-source) exactly when
	// one operand can be untagged garbage.
	if got := r2.Propagate(0, core.PID(3)); got != 0 {
		t.Fatalf("imm AND with untagged src1 must stay untagged, got %d", got)
	}
}
