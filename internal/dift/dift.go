// Package dift implements Dynamic Information Flow Tracking on top of the
// same front-end tag machinery as the speculative pointer tracker — the
// "other program analyses and transformations in hardware" the paper says
// its tracking substrate lays the groundwork for (Section I), and the
// lineage it builds on (Suh et al., Section II).
//
// Data arriving from configured untrusted sources (console, network,
// file-system buffers — here: address ranges) is tagged spurious; tags
// propagate through computation exactly like PID tags propagate through
// the Table I rules; and a configurable security policy restricts how
// spurious values may be used — the classic DIFT policies are provided:
// no tainted jump targets, no tainted pointer dereferences.
package dift

import (
	"fmt"

	"chex86/internal/asm"
	"chex86/internal/decode"
	"chex86/internal/emu"
	"chex86/internal/isa"
)

// Policy selects which uses of tainted data are violations.
type Policy struct {
	// NoTaintedJumpTargets flags indirect control transfers through
	// tainted registers (control-flow hijack).
	NoTaintedJumpTargets bool

	// NoTaintedPointers flags dereferences whose address derives from
	// tainted data (pointer injection).
	NoTaintedPointers bool
}

// DefaultPolicy enables both classic restrictions.
func DefaultPolicy() Policy {
	return Policy{NoTaintedJumpTargets: true, NoTaintedPointers: true}
}

// Violation is a detected information-flow policy violation.
type Violation struct {
	RIP  uint64
	Kind string
	Addr uint64
}

// Error implements error.
func (v *Violation) Error() string {
	return fmt.Sprintf("dift violation: %s at rip=%#x (addr=%#x)", v.Kind, v.RIP, v.Addr)
}

// Stats aggregates tracking activity.
type Stats struct {
	TaintedLoads  uint64
	TaintedStores uint64
	Propagations  uint64
	Checks        uint64

	// InjectedTagFaults counts taint-tag bit flips applied through the
	// fault-injection hooks (FlipReg/FlipMem). A flipped tag degrades the
	// taint lattice — the policy may over- or under-enforce downstream —
	// but the degradation is accounted here, never silent.
	InjectedTagFaults uint64
}

// Engine tracks taint through registers and memory words.
type Engine struct {
	Policy Policy
	Stats  Stats

	// Insts counts macro-ops processed by Run.
	Insts uint64

	// OnInst, when set, observes every macro-op Run processes (the
	// fault-injection scheduling hook; adds no cost when nil).
	OnInst func(n uint64)

	sources []asm.Global // untrusted input ranges
	regs    [isa.NumRegs]bool
	mem     map[uint64]bool // 8-byte-word granular taint
}

// NewEngine returns an engine with the given policy.
func NewEngine(p Policy) *Engine {
	return &Engine{Policy: p, mem: make(map[uint64]bool)}
}

// AddSource marks [addr, addr+size) as an untrusted input region: loads
// from it produce tainted values.
func (e *Engine) AddSource(addr, size uint64) {
	e.sources = append(e.sources, asm.Global{Addr: addr, Size: size})
}

func (e *Engine) isSource(addr uint64) bool {
	for _, s := range e.sources {
		if addr >= s.Addr && addr < s.Addr+s.Size {
			return true
		}
	}
	return false
}

// RegTainted reports a register's taint.
func (e *Engine) RegTainted(r isa.Reg) bool {
	return r.Valid() && r < isa.NumRegs && e.regs[r]
}

// MemTainted reports a memory word's taint.
func (e *Engine) MemTainted(addr uint64) bool { return e.mem[addr&^7] }

func (e *Engine) setReg(r isa.Reg, t bool) {
	if r.Valid() && r < isa.NumRegs && r != isa.FLAGS {
		e.regs[r] = t
	}
}

// ProcessUop propagates taint through one micro-op and applies the policy,
// returning a violation or nil. The propagation rule is the classic DIFT
// one: a result is spurious iff any input is spurious.
func (e *Engine) ProcessUop(rip uint64, u *isa.Uop) *Violation {
	addrTaint := e.RegTainted(u.Mem.Base) || e.RegTainted(u.Mem.Index)

	switch u.Type {
	case isa.ULoad:
		e.Stats.Checks++
		if e.Policy.NoTaintedPointers && addrTaint {
			return &Violation{RIP: rip, Kind: "tainted pointer dereference (load)", Addr: u.EA}
		}
		t := e.MemTainted(u.EA) || e.isSource(u.EA)
		if t {
			e.Stats.TaintedLoads++
		}
		e.setReg(u.Dst, t)

	case isa.UStore:
		e.Stats.Checks++
		if e.Policy.NoTaintedPointers && addrTaint {
			return &Violation{RIP: rip, Kind: "tainted pointer dereference (store)", Addr: u.EA}
		}
		t := u.Src1.Valid() && e.RegTainted(u.Src1)
		if t {
			e.Stats.TaintedStores++
		}
		e.mem[u.EA&^7] = t

	case isa.UJump:
		e.Stats.Checks++
		if e.Policy.NoTaintedJumpTargets && u.Src1.Valid() && e.RegTainted(u.Src1) {
			return &Violation{RIP: rip, Kind: "tainted indirect jump target"}
		}

	case isa.UMov:
		e.propagate(u.Dst, e.RegTainted(u.Src1))

	case isa.ULimm:
		e.setReg(u.Dst, false) // immediates are trusted program text

	case isa.ULea:
		e.propagate(u.Dst, addrTaint)

	case isa.UAlu:
		t := e.RegTainted(u.Src1)
		if !u.HasImm {
			t = t || e.RegTainted(u.Src2)
		}
		e.propagate(u.Dst, t)
	}
	return nil
}

func (e *Engine) propagate(dst isa.Reg, t bool) {
	if t {
		e.Stats.Propagations++
	}
	e.setReg(dst, t)
}

// FlipReg flips a register's taint tag — the fault-injection hook
// modeling an upset in the per-register tag file. The flip is accounted
// in Stats.InjectedTagFaults. It reports whether r names a flippable tag.
func (e *Engine) FlipReg(r isa.Reg) bool {
	if !r.Valid() || r >= isa.NumRegs || r == isa.FLAGS {
		return false
	}
	e.regs[r] = !e.regs[r]
	e.Stats.InjectedTagFaults++
	return true
}

// FlipMem flips the taint tag of the 8-byte word at addr — the
// fault-injection hook for the shadow taint memory. Accounted like
// FlipReg.
func (e *Engine) FlipMem(addr uint64) {
	addr &^= 7
	e.mem[addr] = !e.mem[addr]
	e.Stats.InjectedTagFaults++
}

// Run executes the program functionally while tracking information flow,
// returning the first policy violation (nil if the program is clean).
// Untrusted sources must be registered before the run.
func (e *Engine) Run(prog *asm.Program, maxInsts uint64) (*Violation, error) {
	m := emu.New(prog, emu.Options{MaxInsts: maxInsts})
	var d decode.Decoder
	var buf []isa.Uop
	for {
		rec, err := m.Step()
		if err != nil {
			return nil, err
		}
		if rec == nil {
			return nil, nil
		}
		e.Insts++
		if e.OnInst != nil {
			e.OnInst(e.Insts)
		}
		if rec.Event == emu.EvAllocExit {
			e.setReg(isa.RAX, false) // allocator results are trusted
			continue
		}
		buf = d.Native(rec.Inst, buf[:0])
		for i := range buf {
			if buf[i].Type.IsMem() {
				buf[i].EA = rec.EA
			}
			if v := e.ProcessUop(rec.Inst.Addr, &buf[i]); v != nil {
				return v, nil
			}
		}
	}
}
