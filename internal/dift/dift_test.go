package dift

import (
	"testing"

	"chex86/internal/asm"
	"chex86/internal/isa"
	"chex86/internal/mem"
)

const inputBuf = uint64(mem.GlobalBase) // the untrusted "network buffer"

func newProg() *asm.Builder {
	b := asm.NewBuilder()
	b.Global("input", inputBuf, 64)
	b.Global("pinput", inputBuf+64, 8)
	b.Reloc(inputBuf+64, "input")
	b.DataU64(inputBuf, 0x400100) // attacker-controlled contents
	b.Load(isa.R8, isa.RNone, int64(inputBuf+64))
	return b
}

func TestTaintedJumpDetected(t *testing.T) {
	b := newProg()
	b.Load(isa.RAX, isa.R8, 0) // rax <- untrusted input
	b.JmpReg(isa.RAX)          // control-flow hijack
	b.Hlt()
	e := NewEngine(DefaultPolicy())
	e.AddSource(inputBuf, 64)
	v, err := e.Run(b.MustBuild(), 1000)
	if err != nil {
		t.Fatal(err)
	}
	if v == nil || v.Kind != "tainted indirect jump target" {
		t.Fatalf("hijack not flagged: %v", v)
	}
}

func TestTaintedPointerDetected(t *testing.T) {
	b := newProg()
	b.Load(isa.RAX, isa.R8, 0)  // tainted
	b.Load(isa.RDX, isa.RAX, 0) // dereference through tainted pointer
	b.Hlt()
	e := NewEngine(DefaultPolicy())
	e.AddSource(inputBuf, 64)
	v, err := e.Run(b.MustBuild(), 1000)
	if err != nil {
		t.Fatal(err)
	}
	if v == nil || v.Kind != "tainted pointer dereference (load)" {
		t.Fatalf("pointer injection not flagged: %v", v)
	}
}

func TestTaintPropagatesThroughComputation(t *testing.T) {
	b := newProg()
	b.Load(isa.RAX, isa.R8, 0)                             // tainted
	b.MovRR(isa.RBX, isa.RAX)                              // mov
	b.AddRI(isa.RBX, 0x100)                                // alu imm
	b.Alu(isa.XOR, isa.RegOp(isa.RBX), isa.RegOp(isa.RCX)) // alu reg
	b.JmpReg(isa.RBX)                                      // still tainted
	b.Hlt()
	e := NewEngine(DefaultPolicy())
	e.AddSource(inputBuf, 64)
	v, err := e.Run(b.MustBuild(), 1000)
	if err != nil {
		t.Fatal(err)
	}
	if v == nil {
		t.Fatal("taint lost through mov/add/xor chain")
	}
	if e.Stats.Propagations == 0 {
		t.Fatal("propagation not counted")
	}
}

func TestTaintFlowsThroughMemory(t *testing.T) {
	b := newProg()
	b.Load(isa.RAX, isa.R8, 0) // tainted
	b.Push(isa.RAX)            // spill
	b.MovRI(isa.RAX, 0)        // clear the register
	b.Pop(isa.RBX)             // reload: still tainted
	b.JmpReg(isa.RBX)
	b.Hlt()
	e := NewEngine(DefaultPolicy())
	e.AddSource(inputBuf, 64)
	v, err := e.Run(b.MustBuild(), 1000)
	if err != nil {
		t.Fatal(err)
	}
	if v == nil {
		t.Fatal("taint lost through a memory spill/reload")
	}
	if e.Stats.TaintedStores == 0 || e.Stats.TaintedLoads == 0 {
		t.Fatalf("memory taint accounting: %+v", e.Stats)
	}
}

func TestUntaintedProgramRunsClean(t *testing.T) {
	b := newProg()
	b.Load(isa.RAX, isa.R8, 0) // tainted, but only used arithmetically
	b.AddRI(isa.RAX, 5)
	b.MovRI(isa.RBX, 0x600000)
	// Immediates scrub taint: a fresh constant pointer is trusted.
	b.Load(isa.RDX, isa.R8, 8)
	b.Hlt()
	e := NewEngine(DefaultPolicy())
	e.AddSource(inputBuf, 64)
	v, err := e.Run(b.MustBuild(), 1000)
	if err != nil {
		t.Fatal(err)
	}
	if v != nil {
		t.Fatalf("false positive: %v", v)
	}
	if !e.RegTainted(isa.RAX) {
		t.Fatal("rax should still carry taint")
	}
	if e.RegTainted(isa.RBX) {
		t.Fatal("immediates are trusted")
	}
}

func TestPolicyKnobs(t *testing.T) {
	b := newProg()
	b.Load(isa.RAX, isa.R8, 0)
	b.Load(isa.RDX, isa.RAX, 0) // tainted dereference
	b.Hlt()
	e := NewEngine(Policy{NoTaintedJumpTargets: true}) // pointers allowed
	e.AddSource(inputBuf, 64)
	v, err := e.Run(b.MustBuild(), 1000)
	if err != nil {
		t.Fatal(err)
	}
	if v != nil {
		t.Fatalf("disabled policy still fired: %v", v)
	}
}

func TestAllocatorResultsTrusted(t *testing.T) {
	b := newProg()
	b.Load(isa.RDI, isa.R8, 0) // tainted size request!
	b.CallAddr(0x500000)       // malloc
	b.Load(isa.RDX, isa.RAX, 0)
	b.Hlt()
	e := NewEngine(DefaultPolicy())
	e.AddSource(inputBuf, 64)
	v, err := e.Run(b.MustBuild(), 1000)
	if err != nil {
		t.Fatal(err)
	}
	if v != nil {
		t.Fatalf("allocator return values are trusted pointers: %v", v)
	}
}
