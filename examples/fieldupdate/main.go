// fieldupdate demonstrates the paper's field-deployable defense story
// (Section I): when a zero-day technique evades the shipped
// pointer-tracking rules, the vendor ships a microcode update that extends
// the rule database — no software patching, no recompilation — and the
// same unmodified binary is protected on the next run.
//
// The zero-day here: a heap library that XOR-encodes pointers at rest
// (PointGuard-style). The shipped Table I database has no XOR rule, so
// decoding `ptr = enc ^ key` clears the PID tag and an out-of-bounds write
// through the decoded pointer goes unchecked. The field update installs
// the XOR propagation rule; the exploit is then caught.
package main

import (
	"errors"
	"fmt"
	"log"

	"chex86"
	"chex86/internal/core"
	"chex86/internal/isa"
	"chex86/internal/tracker"
)

func build() *chex86.Program {
	b := chex86.NewProgramBuilder()
	b.MovRI(chex86.RDI, 64)
	b.CallAddr(chex86.MallocEntry)
	// Encode the pointer: enc = ptr ^ key (key is runtime data, so the
	// tracker cannot see through it without an XOR rule).
	b.MovRI(chex86.RCX, 0x5a5a5a5a)
	b.MovRR(chex86.RBX, chex86.RAX)
	b.Alu(isa.XOR, isa.RegOp(chex86.RBX), isa.RegOp(chex86.RCX)) // enc
	// ... later, decode and use it out of bounds.
	b.Alu(isa.XOR, isa.RegOp(chex86.RBX), isa.RegOp(chex86.RCX)) // dec = ptr
	b.MovRI(chex86.RDX, 0x41)
	b.Store(chex86.RBX, 64, chex86.RDX) // one past the end
	b.Hlt()
	prog, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}
	return prog
}

func run(install bool) error {
	cfg := chex86.DefaultConfig()
	cfg.StopOnViolation = true
	sim, err := chex86.NewSim(build(), cfg, 1)
	if err != nil {
		return err
	}
	if install {
		// The field update: one new row for the rule database, deployed
		// through the same microcode-update channel as custom translations.
		sim.DB.Add(tracker.Rule{
			Name: "XOR", Uop: isa.UAlu, Alu: isa.AluXor, HasAlu: true,
			Mode:      tracker.ModeRegReg,
			Example:   "xor %rcx, %rbx, %rax",
			Semantics: "if PID of one source is zero, assign the PID of the other source",
			CExample:  "ptr = enc ^ key;",
			Propagate: func(a, b core.PID) core.PID {
				switch {
				case a == 0:
					return b
				case b == 0:
					return a
				default:
					return a
				}
			},
		})
	}
	_, err = sim.Run()
	return err
}

func main() {
	if err := run(false); err != nil {
		log.Fatalf("unexpected: %v", err)
	}
	fmt.Println("shipped rules:  XOR-encoded pointer evaded tracking — overflow NOT detected")

	err := run(true)
	var v *chex86.Violation
	if !errors.As(err, &v) {
		log.Fatalf("field update failed to catch the exploit: %v", err)
	}
	fmt.Printf("field update:   XOR rule installed — %s detected at rip=%#x\n", v.Kind, v.RIP)
	fmt.Println("\nno recompilation, no binary patch: the rule database was extended in the field,")
	fmt.Println("exactly the deployment path the microcode-level design enables")
}
