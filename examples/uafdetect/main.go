// uafdetect walks through the temporal-safety story of Section IV-C: a
// pointer is spilled to memory, its allocation freed, and the dangling
// alias later reloaded and dereferenced. The shadow capability table keeps
// the freed capability (valid bit clear), the alias machinery recovers the
// PID at the reload, and the injected capCheck flags the use-after-free —
// followed by a double free caught by capFree.Begin.
package main

import (
	"errors"
	"fmt"
	"log"

	"chex86"
)

func buildUAF() *chex86.Program {
	b := chex86.NewProgramBuilder()
	// node = malloc(96); stash the pointer in a global "registry".
	g := chex86.GlobalBase
	b.Global("registry", g, 8)
	b.Global("pregistry", g+16, 8)
	b.Reloc(g+16, "registry")

	b.MovRI(chex86.RDI, 96)
	b.CallAddr(chex86.MallocEntry)
	b.Load(chex86.R8, chex86.RNone, int64(g+16)) // r8 = &registry
	b.Store(chex86.R8, 0, chex86.RAX)            // registry = node (spilled alias)

	// free(node) through a different register: the tracker follows the PID.
	b.MovRR(chex86.RDI, chex86.RAX)
	b.CallAddr(chex86.FreeEntry)

	// Much later: reload the dangling pointer from the registry and use it.
	b.Load(chex86.RBX, chex86.R8, 0) // pointer reload via the alias table
	b.MovRI(chex86.RDX, 0x41)
	b.Store(chex86.RBX, 16, chex86.RDX) // use-after-free
	b.Hlt()

	prog, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}
	return prog
}

func buildDoubleFree() *chex86.Program {
	b := chex86.NewProgramBuilder()
	b.MovRI(chex86.RDI, 48)
	b.CallAddr(chex86.MallocEntry)
	b.MovRR(chex86.RBX, chex86.RAX)
	b.MovRR(chex86.RDI, chex86.RBX)
	b.CallAddr(chex86.FreeEntry)
	b.MovRR(chex86.RDI, chex86.RBX)
	b.CallAddr(chex86.FreeEntry) // second free of the same chunk
	b.Hlt()
	prog, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}
	return prog
}

func detect(prog *chex86.Program) *chex86.Violation {
	cfg := chex86.DefaultConfig()
	cfg.StopOnViolation = true
	_, err := chex86.Run(prog, cfg, 1)
	var v *chex86.Violation
	if !errors.As(err, &v) {
		log.Fatalf("expected a violation, got %v", err)
	}
	return v
}

func main() {
	v := detect(buildUAF())
	fmt.Printf("use-after-free:   %s at rip=%#x through the reloaded spilled alias (pid=%d)\n",
		v.Kind, v.RIP, v.PID)

	v = detect(buildDoubleFree())
	fmt.Printf("double free:      %s at rip=%#x — capFree.Begin found the valid bit already clear\n",
		v.Kind, v.RIP)
}
