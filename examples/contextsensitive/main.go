// contextsensitive demonstrates the paper's headline flexibility claim
// (Section VII-D): capability checks can be surgically enabled for
// security-critical code regions only. Allocations are tracked globally
// either way, but capCheck micro-ops are injected only inside the
// configured RIP ranges — so the micro-op bloat (and its cost) is paid
// only where protection is wanted, while violations inside the critical
// region are still caught.
package main

import (
	"errors"
	"fmt"
	"log"

	"chex86"
)

// build assembles a program with two phases: a hot "trusted" loop that
// hammers a buffer in bounds, and a "critical" input-parsing routine that
// contains an out-of-bounds write. The label markers let us carve the
// critical region out for the context policy.
func build() (*chex86.Program, chex86.Region) {
	b := chex86.NewProgramBuilder()

	b.MovRI(chex86.RDI, 512)
	b.CallAddr(chex86.MallocEntry)
	b.MovRR(chex86.RBX, chex86.RAX) // hot buffer
	b.MovRI(chex86.RDI, 64)
	b.CallAddr(chex86.MallocEntry)
	b.MovRR(chex86.R12, chex86.RAX) // parse buffer

	// Hot loop: thousands of in-bounds accesses.
	b.MovRI(chex86.RSI, 0)
	b.Label("hot")
	b.MovRI(chex86.RCX, 0)
	b.Label("sweep")
	b.LoadIdx(chex86.RDX, chex86.RBX, chex86.RCX, 8, 0)
	b.AddRI(chex86.RDX, 1)
	b.StoreIdx(chex86.RBX, chex86.RCX, 8, 0, chex86.RDX)
	b.AddRI(chex86.RCX, 1)
	b.CmpRI(chex86.RCX, 64)
	b.Jcc(chex86.CondL, "sweep")
	b.AddRI(chex86.RSI, 1)
	b.CmpRI(chex86.RSI, 200)
	b.Jcc(chex86.CondL, "hot")

	// Security-critical region: parses untrusted input with a bug.
	b.Label("critical_begin")
	b.MovRI(chex86.RCX, 0)
	b.Label("parse")
	b.StoreIdx(chex86.R12, chex86.RCX, 8, 0, chex86.RCX)
	b.AddRI(chex86.RCX, 1)
	b.CmpRI(chex86.RCX, 10) // writes 80 bytes into a 64-byte buffer
	b.Jcc(chex86.CondL, "parse")
	b.Label("critical_end")
	b.Hlt()

	prog, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}
	region := chex86.Region{Lo: prog.MustLookup("critical_begin"), Hi: prog.MustLookup("critical_end")}
	return prog, region
}

func run(policy chex86.ContextPolicy, label string) {
	prog, region := build()
	if !policy.All && policy.Regions == nil {
		policy = chex86.Only(region)
	}
	cfg := chex86.DefaultConfig()
	cfg.Context = policy
	cfg.StopOnViolation = true
	res, err := chex86.Run(prog, cfg, 1)
	var v *chex86.Violation
	if !errors.As(err, &v) {
		log.Fatalf("%s: expected the parser overflow to be caught, got %v", label, err)
	}
	fmt.Printf("%-22s caught %s at rip=%#x | injected checks: %d | uop expansion: %.3f\n",
		label, v.Kind, v.RIP, res.InjectedUops, res.UopExpansion())
}

func main() {
	fmt.Println("Context-sensitive enforcement: same program, two policies.")
	run(chex86.Always(), "always-on policy:")
	run(chex86.ContextPolicy{}, "critical-region only:")
	fmt.Println("\nBoth catch the overflow in the critical region; the surgical policy")
	fmt.Println("injects a fraction of the checks because the hot loop runs uninstrumented.")
}
