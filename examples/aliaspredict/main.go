// aliaspredict visualizes the paper's Section V-B observation: the PID
// sequences seen at pointer-reload instructions are remarkably
// predictable when keyed by instruction address. The example builds a
// program whose reload site walks buffers in the "Batch + Stride" shape of
// Table II, collects the observed sequence with the reload probe, prints
// its classification, and reports the stride predictor's accuracy.
package main

import (
	"fmt"
	"log"

	"chex86"
	"chex86/internal/core"
	"chex86/internal/patterns"
)

func main() {
	const nBufs = 16
	b := chex86.NewProgramBuilder()
	g := chex86.GlobalBase
	b.Global("buftab", g, nBufs*8)
	b.Global("pbuftab", g+256, 8)
	b.Reloc(g+256, "buftab")

	// Allocate nBufs buffers into the table.
	b.Load(chex86.R8, chex86.RNone, int64(g+256))
	b.MovRI(chex86.R15, 0)
	b.Label("alloc")
	b.MovRI(chex86.RDI, 64)
	b.CallAddr(chex86.MallocEntry)
	b.StoreIdx(chex86.R8, chex86.R15, 8, 0, chex86.RAX)
	b.AddRI(chex86.R15, 1)
	b.CmpRI(chex86.R15, nBufs)
	b.Jcc(chex86.CondL, "alloc")

	// Batch + Stride: visit each buffer 4 times before moving to the next,
	// looping over the table repeatedly (Listing 1 of the paper).
	b.MovRI(chex86.R12, 0) // round
	b.Label("round")
	b.MovRI(chex86.RSI, 0) // buffer index
	b.Label("buf")
	b.MovRI(chex86.R13, 0) // batch counter
	b.Label("batch")
	b.LoadIdx(chex86.RBX, chex86.R8, chex86.RSI, 8, 0) // THE pointer reload
	b.Load(chex86.RDX, chex86.RBX, 0)
	b.AddRI(chex86.RDX, 1)
	b.Store(chex86.RBX, 0, chex86.RDX)
	b.AddRI(chex86.R13, 1)
	b.CmpRI(chex86.R13, 4)
	b.Jcc(chex86.CondL, "batch")
	b.AddRI(chex86.RSI, 1)
	b.CmpRI(chex86.RSI, nBufs)
	b.Jcc(chex86.CondL, "buf")
	b.AddRI(chex86.R12, 1)
	b.CmpRI(chex86.R12, 20)
	b.Jcc(chex86.CondL, "round")
	b.Hlt()

	prog, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}

	cfg := chex86.DefaultConfig()
	sim, err := chex86.NewSim(prog, cfg, 1)
	if err != nil {
		log.Fatal(err)
	}
	col := patterns.NewCollector(0)
	sim.SetReloadHook(func(pc uint64, pid core.PID) { col.Observe(pc, pid) })
	res, err := sim.Run()
	if err != nil {
		log.Fatal(err)
	}

	reloadPC := prog.MustLookup("batch")
	seq := col.Seq(reloadPC)
	cls := patterns.Classify(seq)
	fmt.Printf("reload site rip=%#x observed %d reloads\n", reloadPC, len(seq))
	n := 16
	if len(seq) < n {
		n = len(seq)
	}
	fmt.Printf("first PIDs:   %v\n", seq[:n])
	fmt.Printf("classified:   %s (Table II)\n", cls)
	fmt.Printf("predictor:    %.1f%% mispredict over %d resolved reloads (PNA0 %d / P0AN %d / PMAN %d)\n",
		100*res.Predictor.MispredictionRate(),
		res.Predictor.Correct+res.Predictor.Mispredictions(),
		res.Predictor.PNA0, res.Predictor.P0AN, res.Predictor.PMAN)
	fmt.Println("\nthe stride predictor locks onto the batch+stride shape after one batch,")
	fmt.Println("so capability checks are injected with the right PID at the front-end")
}
