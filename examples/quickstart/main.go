// Quickstart: assemble a small guest program with a heap buffer overflow
// and watch CHEx86 catch it under the hood — no recompilation, no source
// changes, just the microcode-level capability check injected for the
// offending dereference.
package main

import (
	"errors"
	"fmt"
	"log"

	"chex86"
)

func main() {
	// A tiny "legacy binary": allocate 64 bytes, fill them, then write one
	// word past the end — the classic off-by-one heap overflow.
	b := chex86.NewProgramBuilder()
	b.MovRI(chex86.RDI, 64)
	b.CallAddr(chex86.MallocEntry)
	b.MovRR(chex86.RBX, chex86.RAX)

	b.MovRI(chex86.RCX, 0)
	b.Label("fill")
	b.StoreIdx(chex86.RBX, chex86.RCX, 8, 0, chex86.RCX)
	b.AddRI(chex86.RCX, 1)
	b.CmpRI(chex86.RCX, 9) // bug: writes indexes 0..8 into an 8-word buffer
	b.Jcc(chex86.CondL, "fill")
	b.Hlt()

	prog, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}

	// First, the insecure baseline: the overflow goes completely unnoticed.
	base := chex86.DefaultConfig()
	base.Variant = chex86.VariantInsecure
	base.StopOnViolation = true
	if _, err := chex86.Run(prog, base, 1); err != nil {
		log.Fatal(err)
	}
	fmt.Println("insecure baseline: overflow executed silently (memory corrupted)")

	// Now the same unmodified program on CHEx86.
	cfg := chex86.DefaultConfig()
	cfg.Variant = chex86.VariantMicrocodePrediction
	cfg.StopOnViolation = true
	_, err = chex86.Run(prog, cfg, 1)
	var v *chex86.Violation
	if !errors.As(err, &v) {
		log.Fatalf("expected a capability violation, got %v", err)
	}
	fmt.Printf("CHEx86: %s detected at rip=%#x (ea=%#x, pid=%d)\n", v.Kind, v.RIP, v.EA, v.PID)
	fmt.Println("the capCheck micro-op injected for the dereference flagged the 9th store")
}
