// taint demonstrates the DIFT extension built on the same front-end tag
// substrate as the pointer tracker — the "other program analyses in
// hardware" the paper positions its tracking machinery as groundwork for.
// A value read from an untrusted input buffer flows through computation
// and a stack spill, and is finally used as an indirect jump target: the
// classic control-flow hijack that dynamic information flow tracking
// exists to stop.
package main

import (
	"fmt"
	"log"

	"chex86"
	"chex86/internal/dift"
)

func main() {
	input := chex86.GlobalBase // the untrusted "network buffer"

	b := chex86.NewProgramBuilder()
	b.Global("input", input, 64)
	b.Global("pinput", input+64, 8)
	b.Reloc(input+64, "input")
	// The attacker's payload: a code address smuggled in as data.
	b.DataU64(input, 0x400100)

	b.Load(chex86.R8, chex86.RNone, int64(input+64)) // r8 = &input
	b.Load(chex86.RAX, chex86.R8, 0)                 // rax <- untrusted word
	b.AddRI(chex86.RAX, 0)                           // laundering attempt #1
	b.Push(chex86.RAX)                               // laundering attempt #2:
	b.Pop(chex86.RBX)                                //   flow through memory
	b.JmpReg(chex86.RBX)                             // hijack
	b.Hlt()
	prog, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}

	e := dift.NewEngine(dift.DefaultPolicy())
	e.AddSource(input, 64)
	v, err := e.Run(prog, 10_000)
	if err != nil {
		log.Fatal(err)
	}
	if v == nil {
		log.Fatal("hijack went undetected")
	}
	fmt.Printf("DIFT: %s at rip=%#x\n", v.Kind, v.RIP)
	fmt.Printf("taint survived an ALU op and a stack round-trip: %d propagations, %d tainted loads\n",
		e.Stats.Propagations, e.Stats.TaintedLoads)
	fmt.Println("\nthe same tag plane that tracks capabilities tracks information flow —")
	fmt.Println("the hardware substrate generalizes, as the paper argues")
}
